"""Tests for repro.geometry.vec: coercion, distances, bearings."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import vec


class TestAsPoint:
    def test_pads_2d_with_zero_z(self):
        p = vec.as_point((1.0, 2.0))
        assert p.tolist() == [1.0, 2.0, 0.0]

    def test_accepts_3d(self):
        p = vec.as_point([1, 2, 3])
        assert p.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_wrong_shape(self):
        with pytest.raises(GeometryError):
            vec.as_point([1.0])
        with pytest.raises(GeometryError):
            vec.as_point([1.0, 2.0, 3.0, 4.0])

    def test_as_points_batches(self):
        pts = vec.as_points([[0, 0], [1, 1]])
        assert pts.shape == (2, 3)
        assert pts[1].tolist() == [1.0, 1.0, 0.0]

    def test_as_points_single_vector(self):
        pts = vec.as_points([1.0, 2.0, 3.0])
        assert pts.shape == (1, 3)


class TestDistances:
    def test_distance_basic(self):
        assert vec.distance((0, 0, 0), (3, 4, 0)) == pytest.approx(5.0)

    def test_planar_distance_ignores_z(self):
        assert vec.planar_distance((0, 0, 5), (3, 4, -2)) == pytest.approx(5.0)

    def test_distances_batch(self):
        d = vec.distances(np.array([[3, 4, 0], [0, 0, 0]]), (0, 0, 0))
        assert d.tolist() == pytest.approx([5.0, 0.0])


class TestBearing:
    def test_dead_ahead_is_zero(self):
        assert vec.bearing((0, 0, 0), 0.0, (5, 0, 0)) == pytest.approx(0.0)

    def test_perpendicular_is_half_pi(self):
        assert vec.bearing((0, 0, 0), 0.0, (0, 5, 0)) == pytest.approx(math.pi / 2)

    def test_behind_is_pi(self):
        assert vec.bearing((0, 0, 0), 0.0, (-5, 0, 0)) == pytest.approx(math.pi)

    def test_heading_rotates_frame(self):
        # Facing +y, a target at +y is dead ahead.
        assert vec.bearing((0, 0, 0), math.pi / 2, (0, 5, 0)) == pytest.approx(0.0)

    def test_coincident_target_returns_zero(self):
        assert vec.bearing((1, 1, 0), 0.3, (1, 1, 0)) == 0.0

    def test_bearings_matches_scalar(self, rng):
        targets = rng.uniform(-5, 5, size=(20, 3))
        origin = np.array([0.5, -0.5, 0.0])
        phi = 0.7
        batch = vec.bearings(origin, phi, targets)
        for i in range(20):
            assert batch[i] == pytest.approx(vec.bearing(origin, phi, targets[i]))


class TestDistancesAndBearings:
    def test_matches_individual_functions(self, rng):
        targets = rng.uniform(-4, 4, size=(15, 3))
        origin = np.array([1.0, 2.0, 0.0])
        phi = -1.1
        d, theta = vec.distances_and_bearings(origin, phi, targets)
        assert d == pytest.approx(vec.distances(targets, origin))
        assert theta == pytest.approx(vec.bearings(origin, phi, targets))

    def test_pairwise_shapes_and_values(self, rng):
        origins = rng.uniform(-2, 2, size=(4, 3))
        phis = rng.uniform(-3, 3, size=4)
        targets = rng.uniform(-2, 2, size=(6, 3))
        d, theta = vec.pairwise_distances_and_bearings(origins, phis, targets)
        assert d.shape == (4, 6)
        assert theta.shape == (4, 6)
        for i in range(4):
            di, ti = vec.distances_and_bearings(origins[i], phis[i], targets)
            assert d[i] == pytest.approx(di)
            assert theta[i] == pytest.approx(ti)

    def test_pairwise_rejects_mismatched_phis(self):
        with pytest.raises(GeometryError):
            vec.pairwise_distances_and_bearings(
                np.zeros((3, 3)), np.zeros(2), np.zeros((1, 3))
            )


class TestWrapAngle:
    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_wrap_angle_in_range(self, phi):
        wrapped = vec.wrap_angle(phi)
        assert -math.pi < wrapped <= math.pi

    @given(st.floats(min_value=-3.1, max_value=3.1))
    def test_wrap_angle_identity_inside_range(self, phi):
        assert vec.wrap_angle(phi) == pytest.approx(phi, abs=1e-9)

    @given(st.floats(min_value=-20.0, max_value=20.0))
    def test_wrap_preserves_direction(self, phi):
        wrapped = vec.wrap_angle(phi)
        assert math.cos(wrapped) == pytest.approx(math.cos(phi), abs=1e-9)
        assert math.sin(wrapped) == pytest.approx(math.sin(phi), abs=1e-9)


class TestHeadingVector:
    def test_axes(self):
        assert vec.heading_vector(0.0).tolist() == pytest.approx([1, 0, 0])
        assert vec.heading_vector(math.pi / 2).tolist() == pytest.approx(
            [0, 1, 0], abs=1e-12
        )

    def test_unit_norm(self):
        for phi in np.linspace(-3, 3, 7):
            assert np.linalg.norm(vec.heading_vector(phi)) == pytest.approx(1.0)
