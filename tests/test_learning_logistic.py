"""Tests for weighted IRLS logistic regression and field projection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LearningError
from repro.learning.logistic import (
    field_of_truth_sensor,
    fit_logistic,
    fit_sensor_model,
    fit_sensor_to_field,
)
from repro.models.sensor import SensorModel, SensorParams, features
from repro.simulation.truth_sensor import ConeTruthSensor


class TestFitLogistic:
    def test_recovers_known_weights(self, rng):
        true_w = np.array([1.0, -2.0, 0.5])
        X = np.column_stack([np.ones(4000), rng.normal(size=(4000, 2))])
        p = 1 / (1 + np.exp(-X @ true_w))
        y = (rng.uniform(size=4000) < p).astype(float)
        fit = fit_logistic(X, y, ridge=1e-6)
        assert fit.weights == pytest.approx(true_w, abs=0.15)
        assert fit.converged

    def test_sample_weights_soft_labels(self, rng):
        # Duplicated soft-label examples must match hard-label Bernoulli fit.
        X = np.column_stack([np.ones(300), np.linspace(-2, 2, 300)])
        true_w = np.array([0.3, 1.7])
        p = 1 / (1 + np.exp(-X @ true_w))
        X_soft = np.vstack([X, X])
        y_soft = np.concatenate([np.ones(300), np.zeros(300)])
        w_soft = np.concatenate([p, 1 - p])
        fit = fit_logistic(X_soft, y_soft, sample_weights=w_soft, ridge=1e-8)
        assert fit.weights == pytest.approx(true_w, abs=0.05)

    def test_separable_data_bounded_by_ridge(self):
        X = np.column_stack([np.ones(20), np.concatenate([-np.ones(10), np.ones(10)])])
        y = np.concatenate([np.zeros(10), np.ones(10)])
        fit = fit_logistic(X, y, ridge=0.1)
        assert np.all(np.isfinite(fit.weights))
        assert np.abs(fit.weights).max() < 50

    def test_rejects_empty(self):
        with pytest.raises(LearningError):
            fit_logistic(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_bad_weights(self):
        X = np.ones((3, 1))
        y = np.ones(3)
        with pytest.raises(LearningError):
            fit_logistic(X, y, sample_weights=np.array([-1.0, 1.0, 1.0]))
        with pytest.raises(LearningError):
            fit_logistic(X, y, sample_weights=np.zeros(3))
        with pytest.raises(LearningError):
            fit_logistic(X, y, sample_weights=np.ones(2))

    def test_shape_mismatch(self):
        with pytest.raises(LearningError):
            fit_logistic(np.zeros((3, 2)), np.zeros(4))


class TestFitSensorModel:
    def test_recovers_sensor_params(self, rng):
        true = SensorParams(a=(4.0, -0.5, -0.8), b=(-0.5, -4.0))
        model = SensorModel(true)
        d = rng.uniform(0, 4, size=6000)
        theta = rng.uniform(0, math.pi, size=6000)
        p = model.read_probability(d, theta)
        y = (rng.uniform(size=6000) < p).astype(float)
        fit = fit_sensor_model(d, theta, y, ridge=1e-6)
        learned = SensorModel(fit.sensor_params)
        # Compare predicted probabilities on a grid, not raw coefficients.
        dg = rng.uniform(0, 4, size=200)
        tg = rng.uniform(0, math.pi, size=200)
        assert learned.read_probability(dg, tg) == pytest.approx(
            model.read_probability(dg, tg), abs=0.08
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_fit_never_crashes_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 200))
        d = rng.uniform(0, 5, size=n)
        theta = rng.uniform(0, math.pi, size=n)
        y = rng.integers(0, 2, size=n).astype(float)
        fit = fit_sensor_model(d, theta, y)
        assert np.all(np.isfinite(fit.weights))


class TestFieldProjection:
    def test_cone_projection_matches_field_in_support(self):
        cone = ConeTruthSensor(rr_major=1.0, max_range=3.0)
        fit = fit_sensor_to_field(field_of_truth_sensor(cone), max_distance=4.5)
        model = SensorModel(fit.sensor_params)
        # High read rate on boresight inside range.
        assert float(model.read_probability(1.0, 0.0)) > 0.6
        # Low read rate far outside the aperture.
        assert float(model.read_probability(1.0, math.pi / 2)) < 0.3
        assert float(model.read_probability(1.0, math.pi)) < 0.3
        # Low read rate far beyond range.
        assert float(model.read_probability(6.0, 0.0)) < 0.2

    def test_projection_monotone_behind(self):
        # No rising tail behind the reader (the non-monotone-theta trap).
        cone = ConeTruthSensor()
        fit = fit_sensor_to_field(field_of_truth_sensor(cone), max_distance=4.5)
        model = SensorModel(fit.sensor_params)
        near_front = float(model.read_probability(0.5, 0.0))
        near_back = float(model.read_probability(0.5, math.pi))
        assert near_back < near_front
        assert near_back < 0.4
