"""Stream tuples for the CQL-lite engine.

The paper's Section II-B motivates the cleaned event stream with two CQL
queries; this package implements enough of CQL's stream-relational model to
run them (and queries like them) over our location events:

* a **stream** is a sequence of timestamped tuples;
* a **window** turns a stream into a time-varying *relation* (a bag of tuples
  per tick);
* relational operators transform relations;
* ``Istream`` / ``Rstream`` / ``Dstream`` turn relations back into streams.

Tuples are immutable mappings plus a timestamp.  Equality/hashing is by value
(needed by Istream's relation differencing).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping

from ..errors import QueryError
from ..streams.records import LocationEvent


class StreamTuple(Mapping[str, Any]):
    """An immutable, hashable, timestamped tuple of named values."""

    __slots__ = ("_time", "_values", "_key")

    def __init__(self, time: float, values: Mapping[str, Any]):
        self._time = float(time)
        self._values: Dict[str, Any] = dict(values)
        try:
            self._key = (self._time, frozenset(self._values.items()))
        except TypeError as exc:
            raise QueryError(
                f"tuple values must be hashable, got {self._values!r}"
            ) from exc

    # Mapping interface -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise QueryError(
                f"no attribute {key!r}; tuple has {sorted(self._values)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # Extras -------------------------------------------------------------
    @property
    def time(self) -> float:
        return self._time

    def extended(self, time: float = None, **extra: Any) -> "StreamTuple":
        """Copy with added/overridden attributes (and optionally new time)."""
        values = dict(self._values)
        values.update(extra)
        return StreamTuple(self._time if time is None else time, values)

    def project(self, *names: str) -> "StreamTuple":
        return StreamTuple(self._time, {n: self[n] for n in names})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"StreamTuple(t={self._time}, {inner})"


def tuple_from_event(event: LocationEvent) -> StreamTuple:
    """Adapt a cleaned location event into the query engine's tuple form."""
    x, y, z = event.position
    return StreamTuple(
        event.time,
        {
            "tag_id": str(event.tag),
            "x": x,
            "y": y,
            "z": z,
        },
    )
