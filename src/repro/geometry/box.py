"""Axis-aligned bounding boxes.

Boxes are the currency of the spatial index (SectionIV-C of the paper): every
epoch the filter builds a bounding box of the reader's sensing region, inserts
it into a simplified R*-tree, and probes the tree with the current region's
box to find past regions that overlap it.

The implementation is 3-D; the paper's simulator produces degenerate-z boxes
(``lo.z == hi.z == 0``), which all operations handle (a flat box still has
well-defined intersection, containment and margin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .vec import as_point, as_points


@dataclass(frozen=True)
class Box:
    """Closed axis-aligned box ``[lo, hi]`` in 3-D.

    Immutable so boxes can be shared freely between index nodes and region
    records without defensive copies.
    """

    lo: Tuple[float, float, float]
    hi: Tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise GeometryError(f"box lo {self.lo} exceeds hi {self.hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_arrays(lo, hi) -> "Box":
        """Build a box from any 2/3-element sequences."""
        lo3 = as_point(lo)
        hi3 = as_point(hi)
        return Box(tuple(float(v) for v in lo3), tuple(float(v) for v in hi3))

    @staticmethod
    def from_points(points) -> "Box":
        """Smallest box containing every row of ``points``."""
        pts = as_points(points)
        if pts.shape[0] == 0:
            raise GeometryError("cannot build a box from zero points")
        return Box.from_arrays(pts.min(axis=0), pts.max(axis=0))

    @staticmethod
    def around(center, radius: float) -> "Box":
        """Cube of half-width ``radius`` centred at ``center``."""
        if radius < 0:
            raise GeometryError(f"negative radius {radius}")
        c = as_point(center)
        return Box.from_arrays(c - radius, c + radius)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        return (np.asarray(self.lo) + np.asarray(self.hi)) / 2.0

    @property
    def extents(self) -> np.ndarray:
        return np.asarray(self.hi) - np.asarray(self.lo)

    def volume(self) -> float:
        """Product of extents.  Degenerate axes contribute factor 0."""
        e = self.extents
        return float(e[0] * e[1] * e[2])

    def area_xy(self) -> float:
        """Area of the xy-projection (useful in the paper's 2-D scenes)."""
        e = self.extents
        return float(e[0] * e[1])

    def margin(self) -> float:
        """Sum of extents (the R*-tree "margin" criterion)."""
        return float(self.extents.sum())

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point) -> bool:
        p = as_point(point)
        return bool(
            all(l <= v <= h for l, v, h in zip(self.lo, p, self.hi))
        )

    def contains_points(self, points) -> np.ndarray:
        """Boolean mask of which rows of ``points`` fall inside the box."""
        pts = as_points(points)
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all((pts >= lo) & (pts <= hi), axis=1)

    def contains_box(self, other: "Box") -> bool:
        return bool(
            all(sl <= ol for sl, ol in zip(self.lo, other.lo))
            and all(oh <= sh for oh, sh in zip(other.hi, self.hi))
        )

    def intersects(self, other: "Box") -> bool:
        return bool(
            all(sl <= oh for sl, oh in zip(self.lo, other.hi))
            and all(ol <= sh for ol, sh in zip(other.lo, self.hi))
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Box") -> "Box":
        return Box(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersection(self, other: "Box") -> Optional["Box"]:
        """Overlap box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def expanded(self, amount: float) -> "Box":
        """Box grown by ``amount`` on every side (clamped to stay valid)."""
        lo = tuple(l - amount for l in self.lo)
        hi = tuple(h + amount for h in self.hi)
        lo = tuple(min(l, h) for l, h in zip(lo, hi))
        return Box(lo, hi)

    def enlargement(self, other: "Box") -> float:
        """Volume increase if this box were grown to cover ``other``.

        This is the R-tree ChooseSubtree criterion.  In degenerate-z scenes
        volume would always be zero, so we fall back to xy-area and then
        margin growth, keeping the criterion discriminative.
        """
        merged = self.union(other)
        dv = merged.volume() - self.volume()
        if dv > 0.0:
            return dv
        da = merged.area_xy() - self.area_xy()
        if da > 0.0:
            return da
        return merged.margin() - self.margin()

    def overlap_measure(self, other: "Box") -> float:
        """Size of the intersection (volume, falling back to xy-area)."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        v = inter.volume()
        return v if v > 0.0 else inter.area_xy()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` points uniformly from the box (``(n, 3)``)."""
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return rng.uniform(lo, hi, size=(n, 3))


def union_all(boxes: Sequence[Box]) -> Box:
    """Smallest box covering every box in ``boxes``."""
    if not boxes:
        raise GeometryError("union_all of zero boxes")
    out = boxes[0]
    for b in boxes[1:]:
        out = out.union(b)
    return out


def iter_pairs_intersecting(boxes: Sequence[Box]) -> Iterator[Tuple[int, int]]:
    """Yield index pairs of intersecting boxes (brute force, test helper)."""
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            if boxes[i].intersects(boxes[j]):
                yield (i, j)
