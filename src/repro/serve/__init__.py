"""Online ingest serving: live sources in, exactly-once emissions out.

The serve layer turns the batch pipeline into a long-lived service:

* :mod:`~repro.serve.protocol` — length-prefixed binary framing shared by
  the server and clients (sans-IO decoder);
* :mod:`~repro.serve.watermark` — per-source sequencing and low-watermark
  alignment of K live streams into the batch pipeline's epochs;
* :mod:`~repro.serve.ingest` — admission control and credit/pause
  backpressure with bounded buffering;
* :mod:`~repro.serve.sink` — the durable offset-stamped emission log with
  verify-don't-reappend crash recovery (exactly-once delivery);
* :mod:`~repro.serve.service` — the asyncio front-end wiring it all around
  a :class:`~repro.runtime.runtime.ShardedRuntime` with mid-stream
  checkpoints;
* :mod:`~repro.serve.client` — reference replay/tail/stats clients.
"""

from .client import (
    EmissionTail,
    ReplaySource,
    fetch_stats,
    request_reshard,
    split_trace,
)
from .ingest import IngestController
from .protocol import Frame, FrameDecoder
from .service import ReproService
from .sink import DeliverySink
from .watermark import AlignedEpoch, WatermarkAligner

__all__ = [
    "AlignedEpoch",
    "DeliverySink",
    "EmissionTail",
    "Frame",
    "FrameDecoder",
    "IngestController",
    "ReplaySource",
    "ReproService",
    "WatermarkAligner",
    "fetch_stats",
    "request_reshard",
    "split_trace",
]
