"""Quickstart: clean a noisy mobile-RFID stream into location events.

Simulates a small warehouse scan (Section V-A of the paper), runs the
factored particle filter over the raw streams, and prints the resulting
clean event stream next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    CleaningPipeline,
    FactoredParticleFilter,
    InferenceConfig,
    OutputPolicyConfig,
    WarehouseConfig,
    WarehouseSimulator,
)
from repro.simulation import LayoutConfig


def main() -> None:
    # 1. A simulated deployment: 12 tagged objects on a shelf row, 4 shelf
    #    tags with known locations, a robot reader scanning at 0.1 ft/s.
    simulator = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=12, n_shelf_tags=4), seed=7)
    )
    trace = simulator.generate()
    print(f"raw stream: {trace.n_readings} readings over {trace.duration:.0f} s")

    # 2. The probabilistic model (Section III).  world_model() wires the
    #    sensor/motion/sensing/object components for this deployment; in a
    #    real deployment you would learn them with repro.learning.calibrate.
    model = simulator.world_model()

    # 3. Inference (Section IV): the factored particle filter inside a
    #    cleaning pipeline that emits an event 30 s after each object comes
    #    into the reader's scope.
    engine = FactoredParticleFilter(
        model, InferenceConfig(reader_particles=100, object_particles=300)
    )
    pipeline = CleaningPipeline(engine, OutputPolicyConfig(delay_s=30.0))
    sink = pipeline.run(trace.epochs())

    # 4. Inspect the clean event stream against the ground truth.
    truth = trace.truth.final_object_locations()
    print(f"\n{'event':>28} | {'estimated (x, y)':>18} | {'true (x, y)':>14} | err(ft)")
    print("-" * 78)
    for tag, event in sorted(sink.latest_by_tag().items(), key=lambda kv: kv[0].number):
        tx, ty = truth[tag.number][0], truth[tag.number][1]
        ex, ey = event.position[0], event.position[1]
        err = ((ex - tx) ** 2 + (ey - ty) ** 2) ** 0.5
        stats = event.statistics
        radius = f" (95% r={stats.confidence_radius:.2f}ft)" if stats else ""
        print(
            f"t={event.time:7.1f}s  {str(tag):>12} | ({ex:6.2f}, {ey:6.2f})    "
            f"| ({tx:5.2f}, {ty:5.2f}) | {err:.3f}{radius}"
        )


if __name__ == "__main__":
    main()
