"""State-tree serialization primitives for the durable-state subsystem.

A *state tree* is what the snapshot hooks on the live objects return
(:meth:`FactoredParticleFilter.snapshot_state`,
:meth:`CleaningPipeline.snapshot_state`, …): a nested structure of dicts and
lists whose leaves are numpy arrays, numbers, strings, booleans, or ``None``.
This module splits such a tree into

* a JSON-able skeleton in which every array leaf is replaced by an
  ``{"__array__": <key>}`` placeholder, and
* a flat ``{key: ndarray}`` mapping destined for one ``.npz`` file,

and joins them back on load.  Keeping the split generic means the engines
describe *what* their state is while this layer owns *how* it is persisted —
new engine fields serialize without touching the format code.

The RNG codec is here too: :class:`numpy.random.Generator` bit-generator
state is a nested dict whose leaves may be Python ints of arbitrary size
(PCG64 carries 128-bit words) or numpy integers; the codec normalizes it to
pure JSON types and back, for any bit-generator family.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..errors import StateError

#: Placeholder key marking an extracted array leaf in the JSON skeleton.
ARRAY_MARKER = "__array__"


# ---------------------------------------------------------------------------
# RNG bit-generator state codec
# ---------------------------------------------------------------------------
def rng_state_to_jsonable(state: Any) -> Any:
    """Normalize a ``Generator.bit_generator.state`` tree to JSON types.

    Numpy integers and integer arrays (some bit generators keep their word
    pool as a uint array) become Python ints / lists of ints; containers
    recurse; everything else must already be JSON-able.
    """
    if isinstance(state, dict):
        return {str(k): rng_state_to_jsonable(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [rng_state_to_jsonable(v) for v in state]
    if isinstance(state, np.ndarray):
        return {"__ndarray_int__": [int(v) for v in state.ravel()]}
    if isinstance(state, (np.integer, np.bool_)):
        return int(state)
    if isinstance(state, (int, float, str, bool)) or state is None:
        return state
    raise StateError(f"cannot serialize RNG state leaf of type {type(state)!r}")


def jsonable_to_rng_state(state: Any) -> Any:
    """Inverse of :func:`rng_state_to_jsonable`."""
    if isinstance(state, dict):
        if set(state) == {"__ndarray_int__"}:
            return np.asarray(state["__ndarray_int__"], dtype=np.uint64)
        return {k: jsonable_to_rng_state(v) for k, v in state.items()}
    if isinstance(state, list):
        return [jsonable_to_rng_state(v) for v in state]
    return state


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild a :class:`numpy.random.Generator` from a captured state dict.

    The bit-generator class is looked up by the name recorded in the state
    itself, so PCG64 checkpoints restore as PCG64 even if numpy's default
    changes between versions.
    """
    name = state.get("bit_generator")
    try:
        cls = getattr(np.random, str(name))
    except AttributeError:
        raise StateError(f"unknown bit generator {name!r} in RNG state") from None
    bit_generator = cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ---------------------------------------------------------------------------
# State-tree split / join
# ---------------------------------------------------------------------------
def split_state_tree(tree: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Extract every ndarray leaf out of a state tree.

    Returns the JSON-able skeleton plus a flat ``{path_key: array}`` dict;
    path keys join the tree path with ``/`` (``"engine/arena/positions"``).
    """
    arrays: Dict[str, np.ndarray] = {}

    def walk(node: Any, path: str) -> Any:
        if isinstance(node, np.ndarray):
            arrays[path] = node
            return {ARRAY_MARKER: path}
        if isinstance(node, dict):
            if ARRAY_MARKER in node:
                raise StateError(f"state tree at {path!r} uses the reserved key")
            return {
                str(k): walk(v, f"{path}/{k}" if path else str(k))
                for k, v in node.items()
            }
        if isinstance(node, (list, tuple)):
            return [walk(v, f"{path}/{i}") for i, v in enumerate(node)]
        if isinstance(node, (np.integer,)):
            return int(node)
        if isinstance(node, (np.floating,)):
            return float(node)
        if isinstance(node, (np.bool_,)):
            return bool(node)
        if isinstance(node, (int, float, str, bool)) or node is None:
            return node
        raise StateError(
            f"cannot serialize state leaf of type {type(node)!r} at {path!r}"
        )

    return walk(tree, ""), arrays


def join_state_tree(skeleton: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`split_state_tree`: re-inject arrays by path key."""

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            if set(node) == {ARRAY_MARKER}:
                key = node[ARRAY_MARKER]
                try:
                    return arrays[key]
                except KeyError:
                    raise StateError(
                        f"checkpoint is missing array {key!r}"
                    ) from None
            return {k: walk(v) for k, v in node.items()}
        if isinstance(node, list):
            return [walk(v) for v in node]
        return node

    return walk(skeleton)


def missing_array_keys(skeleton: Any, arrays: Dict[str, np.ndarray]) -> List[str]:
    """Array placeholders in ``skeleton`` with no backing entry (test hook)."""
    missing: List[str] = []

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            if set(node) == {ARRAY_MARKER}:
                if node[ARRAY_MARKER] not in arrays:
                    missing.append(node[ARRAY_MARKER])
                return
            for v in node.values():
                walk(v)
        elif isinstance(node, list):
            for v in node:
                walk(v)

    walk(skeleton)
    return missing
