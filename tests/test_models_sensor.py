"""Tests for the logistic RFID sensor model (Eq. 1)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.models.sensor import (
    DEFAULT_SENSOR_PARAMS,
    SensorModel,
    SensorParams,
    features,
    field_correlation,
    log_sigmoid,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_extremes_finite(self):
        assert 0.0 < sigmoid(np.array(-1000.0)) < 1.0
        assert 0.0 < sigmoid(np.array(1000.0)) < 1.0

    @given(st.floats(min_value=-100, max_value=100))
    def test_log_sigmoid_consistent(self, x):
        direct = math.log(float(sigmoid(np.array(x))))
        assert float(log_sigmoid(np.array(x))) == pytest.approx(direct, abs=1e-9)

    @given(st.floats(min_value=-30, max_value=30))
    def test_symmetry(self, x):
        assert float(sigmoid(np.array(x)) + sigmoid(np.array(-x))) == pytest.approx(1.0)


class TestSensorParams:
    def test_weights_roundtrip(self):
        params = SensorParams(a=(1.0, -2.0, -0.5), b=(-0.1, -3.0))
        assert SensorParams.from_weights(params.weights) == params

    def test_rejects_nonfinite(self):
        with pytest.raises(ConfigurationError):
            SensorParams(a=(float("nan"), 0, 0), b=(0, 0))

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ConfigurationError):
            SensorParams.from_weights(np.zeros(4))


class TestFeatures:
    def test_design_matrix(self):
        X = features(np.array([2.0]), np.array([0.5]))
        assert X.shape == (1, 5)
        assert X[0].tolist() == pytest.approx([1.0, 2.0, 4.0, 0.5, 0.25])


class TestSensorModel:
    @pytest.fixture
    def model(self):
        return SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -6.0)))

    def test_high_probability_at_reader(self, model):
        assert float(model.read_probability(0.0, 0.0)) > 0.95

    def test_decays_with_distance(self, model):
        probs = [float(model.read_probability(d, 0.0)) for d in (0.0, 1.0, 2.0, 3.0)]
        assert probs == sorted(probs, reverse=True)

    def test_decays_with_angle(self, model):
        probs = [
            float(model.read_probability(1.0, t)) for t in (0.0, 0.5, 1.0, 2.0)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_log_likelihood_matches_probability(self, model):
        d = np.array([0.5, 2.0])
        theta = np.array([0.1, 0.8])
        p = model.read_probability(d, theta)
        ll_read = model.log_likelihood(d, theta, True)
        ll_miss = model.log_likelihood(d, theta, False)
        assert np.exp(ll_read) == pytest.approx(p, rel=1e-6)
        assert np.exp(ll_miss) == pytest.approx(1 - p, rel=1e-6)

    def test_log_likelihood_finite_at_extremes(self, model):
        ll = model.log_likelihood(np.array([100.0]), np.array([3.0]), True)
        assert np.isfinite(ll).all()

    def test_pose_interface_matches_features(self, model):
        reader = np.array([0.0, 0.0, 0.0])
        tags = np.array([[2.0, 0.0, 0.0], [0.0, 1.5, 0.0]])
        p_pose = model.read_probability_at(reader, 0.0, tags)
        p_feat = model.read_probability(
            np.array([2.0, 1.5]), np.array([0.0, math.pi / 2])
        )
        assert p_pose == pytest.approx(p_feat)

    def test_effective_range_monotone_probability(self, model):
        r = model.effective_range(0.05)
        assert float(model.read_probability(r * 0.99, 0.0)) >= 0.05
        assert float(model.read_probability(r * 1.05, 0.0)) < 0.055

    def test_effective_range_validates(self, model):
        with pytest.raises(ConfigurationError):
            model.effective_range(1.5)

    def test_field_grid_shape(self, model):
        xs, ys, field = model.field_grid(extent_ft=2.0, resolution=11)
        assert xs.shape == (11,) and ys.shape == (11,)
        assert field.shape == (11, 11)
        assert (field >= 0).all() and (field <= 1).all()
        # Peak at the reader's own cell (center of grid, slightly forward).
        assert field.max() == pytest.approx(float(model.read_probability(0.0, 0.0)), abs=0.01)


class TestFieldCorrelation:
    def test_self_correlation_is_one(self):
        m = SensorModel(DEFAULT_SENSOR_PARAMS)
        assert field_correlation(m, m) == pytest.approx(1.0)

    def test_different_models_lower(self):
        a = SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -6.0)))
        b = SensorModel(SensorParams(a=(1.0, -3.0, 0.0), b=(-4.0, 0.0)))
        assert field_correlation(a, b) < 0.999
