"""Ablation: spatial index on/off, and the work it saves.

Section IV-C's claim: the index restricts per-epoch processing to Cases 1-2
with no obvious accuracy loss.  We report objects processed vs skipped and
the accuracy/cost deltas.
"""

import pytest

from conftest import one_shot, record_report
from repro.config import InferenceConfig
from repro.eval import run_factored
from repro.eval.report import format_table
from repro.simulation.layout import LayoutConfig
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

BASE = InferenceConfig(reader_particles=100, object_particles=300, seed=0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_spatial_index(benchmark, truth_projection, scale):
    n_objects = int(100 * min(scale, 5))
    sim = WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(
                n_objects=n_objects, object_spacing_ft=0.25, n_shelf_tags=4
            ),
            n_rounds=2,
            seed=903,
        )
    )
    trace = sim.generate()
    model = sim.world_model(sensor_params=truth_projection[1.0])

    def sweep():
        plain = run_factored(trace, model, BASE, name="factored")
        indexed = run_factored(trace, model, BASE.with_index(), name="indexed")
        return plain, indexed

    plain, indexed = one_shot(benchmark, sweep)

    processed_plain = plain.extra["objects_processed"]
    processed_indexed = indexed.extra["objects_processed"]
    report = format_table(
        ["variant", "XY error (ft)", "ms/reading", "object-epochs processed"],
        [
            ["factored (no index)", plain.error.xy, plain.time_per_reading_ms, int(processed_plain)],
            ["factored + index", indexed.error.xy, indexed.time_per_reading_ms, int(processed_indexed)],
        ],
        title=f"Ablation: spatial index ({n_objects} objects)",
    )
    record_report("ablation_index", report)

    # The index must cut the processed-object volume while keeping accuracy.
    # The achievable ratio is (Case-2 window) / (warehouse span): at CI scale
    # (100 objects, ~25 ft) that is ~0.6; it shrinks as the warehouse grows.
    ratio_bound = 0.7 if n_objects <= 150 else 0.5
    assert processed_indexed < processed_plain * ratio_bound
    assert indexed.error.xy < plain.error.xy + 0.15
    # The deterministic claim is the processed-object count above; the
    # wall-clock comparison gets tolerance for scheduler noise on shared
    # machines (the indexed variant wins clearly at larger object counts).
    assert indexed.time_per_reading_ms < plain.time_per_reading_ms * 1.35
