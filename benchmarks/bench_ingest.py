"""Ingest-service throughput and latency: the cost of serving vs batch.

The online front-end (``repro serve``) accepts framed records over a unix
socket, aligns K sources behind a low watermark, and drives the same
``ShardedRuntime`` the batch pipeline uses.  This benchmark measures what
the serving layer adds, in two parts:

* **client-scaling rows** — the full trace replayed through the service at
  1, 8, and 64 concurrent socket sources: ``reads_per_s`` (records through
  the socket), ``epochs_per_s`` (inference throughput), and the
  frame-to-emission latency percentiles (p50/p99 from frame arrival to the
  epoch's emissions hitting the sink);
* **a sustained-backpressure row** — the same trace flooded through a
  deliberately small server (16-frame queues, pause high-water 12) so the
  credit windows and the global PAUSE engage continuously; reported with
  the pause/resume counts and the peak buffered frames against the hard
  memory bound.

Every row records a digest of the emission log: the service must produce
*byte-identical* output no matter the client count or how hard the brakes
drag — serving is flow control, never data control.

Standalone (no pytest-benchmark dependency) so CI can smoke-run it::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--quick]
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick \
        --no-write --check BENCH_ingest.json

``--check`` turns the run into a regression guard.  Enforced invariants
are machine-independent (measured within the same run, so shared CI
runners cannot flake them): all rows must emit byte-identical logs, the
backpressure row must actually pause and stay within its memory bound,
and p99 latency must dominate p50.  Absolute throughput vs the recorded
baseline is enforced only for rows at the baseline's scale (skipped in
``--quick``) within ``--check-tolerance``.  Results are written to
``BENCH_ingest.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cli import _default_model
from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
    ServeConfig,
)
from repro.models import config_for_sensor
from repro.serve import ReplaySource, ReproService
from repro.simulation.layout import LayoutConfig
from repro.simulation.truth_sensor import ConeTruthSensor
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

POLICY = OutputPolicyConfig(delay_s=5.0)
CLIENT_COUNTS = (1, 8, 64)
QUICK_CLIENT_COUNTS = (1, 8)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"


def build_scenario(n_objects: int, n_rounds: int, seed: int = 7):
    simulator = WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(n_objects=n_objects, n_shelf_tags=2),
            sensor=ConeTruthSensor(rr_major=0.9),
            n_rounds=n_rounds,
            seed=seed,
        )
    )
    trace = simulator.generate()
    model, _, sensor = _default_model(trace)
    config = config_for_sensor(
        InferenceConfig(reader_particles=60, object_particles=120), sensor
    )
    return trace, model, config


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    index = min(len(values) - 1, int(q * len(values)))
    return values[index]


def run_service(trace, model, config, n_sources: int, serve: ServeConfig, workdir: str):
    """One replay through a fresh in-process service; returns (row parts)."""
    emissions = f"{workdir}/emissions_{n_sources}.jsonl"
    service = ReproService(
        model,
        inference=config,
        runtime=RuntimeConfig(n_shards=2),
        policy=POLICY,
        serve=serve,
        socket_path=f"{workdir}/bench_{n_sources}.sock",
        emissions_path=emissions,
    )
    replay = ReplaySource(service.socket_path, trace, n_sources=n_sources)

    async def main():
        ready = asyncio.Event()
        task = asyncio.create_task(service.run_async(ready))
        await ready.wait()
        start = time.perf_counter()
        report = await replay.run_async()
        await asyncio.wait_for(task, timeout=600)
        return time.perf_counter() - start, report

    wall_s, report = asyncio.run(main())
    latencies = sorted(service._latencies)
    log = Path(emissions).read_bytes()
    return {
        "wall_s": wall_s,
        "records": sum(r["sent"] for r in report.values()),
        "epochs": service.runtime.epochs_processed,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "emissions": log.count(b"\n"),
        "digest": hashlib.sha256(log).hexdigest(),
        "counters": service.ingest.counters,
        "pauses_seen": sum(r["pauses_seen"] for r in report.values()),
    }


def measure_clients(trace, model, config, n_sources: int, workdir: str) -> dict:
    serve = ServeConfig(epoch_length=1.0, queue_capacity=64, credit_batch=8)
    run = run_service(trace, model, config, n_sources, serve, workdir)
    return {
        "kind": "clients",
        "n_clients": n_sources,
        "records": run["records"],
        "reads_per_s": round(run["records"] / run["wall_s"], 1),
        "epochs": run["epochs"],
        "epochs_per_s": round(run["epochs"] / run["wall_s"], 2),
        "frame_to_emission_p50_s": round(run["p50_s"], 4),
        "frame_to_emission_p99_s": round(run["p99_s"], 4),
        "emissions": run["emissions"],
        "emissions_sha256": run["digest"],
        "wall_s": round(run["wall_s"], 3),
    }


def measure_backpressure(trace, model, config, n_sources: int, workdir: str) -> dict:
    serve = ServeConfig(
        epoch_length=1.0,
        queue_capacity=16,
        credit_batch=4,
        pause_high_water=12,
        pause_low_water=4,
    )
    run = run_service(trace, model, config, n_sources, serve, workdir)
    counters = run["counters"]
    return {
        "kind": "backpressure",
        "n_clients": n_sources,
        "records": run["records"],
        "reads_per_s": round(run["records"] / run["wall_s"], 1),
        "epochs_per_s": round(run["epochs"] / run["wall_s"], 2),
        "frame_to_emission_p50_s": round(run["p50_s"], 4),
        "frame_to_emission_p99_s": round(run["p99_s"], 4),
        "pauses": counters.pauses,
        "resumes": counters.resumes,
        "client_pauses_seen": run["pauses_seen"],
        "peak_buffered": counters.peak_buffered,
        "buffered_bound": n_sources * serve.queue_capacity,
        "emissions_sha256": run["digest"],
        "wall_s": round(run["wall_s"], 3),
    }


def _check_regression(results: list, baseline_path: str, tolerance: float) -> bool:
    """Byte-parity/backpressure invariants plus a baseline throughput floor.

    Machine-independent invariants are *enforced*: every row in this run
    must share one emission digest (client count and flow control change
    nothing), the backpressure row must have paused at least once, stayed
    within ``buffered_bound``, and resumed every pause; and p99 latency
    must be at least p50 wherever latencies were observed.  Absolute
    ``reads_per_s`` vs the recorded baseline is enforced only for rows at
    the baseline's scale (a quick run never matches, so CI skips it).
    """
    with open(baseline_path) as fp:
        baseline = json.load(fp)
    recorded = {
        (row["kind"], row["n_clients"]): row for row in baseline["results"]
    }
    ok = True
    print(f"\nregression check vs {baseline_path} (tolerance {tolerance:.0%}):")

    digests = {row["emissions_sha256"] for row in results}
    parity = len(digests) == 1
    print(
        f"  emission parity across {len(results)} rows: "
        f"{'ok' if parity else 'REGRESSION — logs differ across client counts'}"
    )
    ok = ok and parity

    for row in results:
        key = (row["kind"], row["n_clients"])
        label = f"{key[0]} n_clients={key[1]}"
        if row["kind"] == "backpressure":
            paused = row["pauses"] > 0
            balanced = row["resumes"] == row["pauses"]
            bounded = row["peak_buffered"] <= row["buffered_bound"]
            print(
                f"  {label}: pauses {row['pauses']} (resumes {row['resumes']}), "
                f"peak buffered {row['peak_buffered']} <= bound "
                f"{row['buffered_bound']} "
                f"{'ok' if paused and balanced and bounded else 'REGRESSION'}"
            )
            ok = ok and paused and balanced and bounded
        p_ok = row["frame_to_emission_p99_s"] >= row["frame_to_emission_p50_s"]
        if not p_ok:
            print(f"  {label}: p99 < p50 REGRESSION")
        ok = ok and p_ok

        base_row = recorded.get(key)
        if base_row is None or base_row.get("records") != row["records"]:
            print(f"  {label}: no baseline at this scale, throughput skipped")
            continue
        floor = base_row["reads_per_s"] / (1.0 + tolerance)
        slow = row["reads_per_s"] < floor
        print(
            f"  {label}: {row['reads_per_s']:.0f} reads/s vs baseline "
            f"{base_row['reads_per_s']:.0f} (floor {floor:.0f}) "
            f"{'REGRESSION' if slow else 'ok'}"
        )
        ok = ok and not slow
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller trace, 1/8 clients (CI smoke)"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip BENCH_ingest.json"
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        metavar="BASELINE_JSON",
        help="compare against a recorded BENCH_ingest.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional reads/s drop vs the baseline "
        "(default 1.0 — CI machines vary)",
    )
    args = parser.parse_args()

    n_objects, n_rounds = (6, 1) if args.quick else (10, 2)
    client_counts = QUICK_CLIENT_COUNTS if args.quick else CLIENT_COUNTS
    trace, model, config = build_scenario(n_objects, n_rounds)
    total = len(trace.readings) + len(trace.reports)
    print(
        f"trace: {n_objects} objects x {n_rounds} rounds = {total} records, "
        f"{len(list(trace.epochs()))} epochs"
    )

    results = []
    print(
        f"\n{'clients':>8} {'reads/s':>9} {'epochs/s':>9} {'p50_ms':>8} "
        f"{'p99_ms':>8} {'wall_s':>7}"
    )
    with tempfile.TemporaryDirectory() as workdir:
        for count in client_counts:
            row = measure_clients(trace, model, config, count, workdir)
            results.append(row)
            print(
                f"{count:>8} {row['reads_per_s']:>9.0f} {row['epochs_per_s']:>9.2f} "
                f"{row['frame_to_emission_p50_s'] * 1e3:>8.1f} "
                f"{row['frame_to_emission_p99_s'] * 1e3:>8.1f} "
                f"{row['wall_s']:>7.2f}"
            )

        bp = measure_backpressure(trace, model, config, 8, workdir)
        results.append(bp)
        print(
            f"\nbackpressure (8 clients, 16-frame queues): "
            f"{bp['reads_per_s']:.0f} reads/s, {bp['pauses']} pauses / "
            f"{bp['resumes']} resumes, peak buffered {bp['peak_buffered']} "
            f"(bound {bp['buffered_bound']})"
        )

    digests = {row["emissions_sha256"] for row in results}
    print(
        f"emission parity: {len(digests)} distinct digest(s) across "
        f"{len(results)} rows"
    )

    payload = {
        "benchmark": "ingest",
        "description": (
            "Online ingest service (repro serve) vs the batch pipeline: "
            "the full trace replayed through a unix-socket service at "
            "1/8/64 concurrent sources (reads_per_s = records through the "
            "socket, epochs_per_s = inference throughput, p50/p99 = frame "
            "arrival to sink emission), plus a sustained-backpressure row "
            "(16-frame queues, pause high-water 12) where the credit "
            "windows and global PAUSE drag continuously.  All rows must "
            "emit byte-identical logs — emissions_sha256 proves flow "
            "control never becomes data control."
        ),
        "quick": bool(args.quick),
        "scenario": {"n_objects": n_objects, "n_rounds": n_rounds, "records": total},
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    # Check against the recorded baseline BEFORE overwriting it, so a CI
    # run may point --check at the committed BENCH_ingest.json.
    failed = args.check is not None and not _check_regression(
        results, args.check, args.check_tolerance
    )
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
