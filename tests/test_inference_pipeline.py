"""Tests for the cleaning pipeline's output policies (Section II-A)."""

import numpy as np
import pytest

from repro.config import OutputPolicyConfig
from repro.inference.estimates import LocationEstimate
from repro.inference.pipeline import CleaningPipeline
from repro.streams.records import make_epoch
from repro.streams.sinks import CollectingSink


class FakeEngine:
    """Deterministic engine stub: object i sits at (2, i, 0)."""

    def __init__(self):
        self._known = set()
        self.epoch_index = -1

    def step(self, epoch):
        self.epoch_index += 1
        for tag in epoch.object_tags:
            self._known.add(tag.number)

    def known_objects(self):
        return sorted(self._known)

    def object_estimate(self, number):
        cov = 0.01 * np.eye(3)
        return LocationEstimate(np.array([2.0, float(number), 0.0]), cov, 100)


def epochs_with_read_at(read_times, number=1, total=100):
    out = []
    for t in range(total):
        reads = [number] if t in read_times else []
        out.append(make_epoch(float(t), (0.0, 0.0), object_tags=reads))
    return out


class TestDelayedEmission:
    def test_emits_after_delay(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(), OutputPolicyConfig(delay_s=10.0, on_scan_complete=False), sink
        )
        for epoch in epochs_with_read_at({5}, total=30):
            pipeline.step(epoch)
        assert len(sink) == 1
        event = sink.events[0]
        assert event.time == pytest.approx(15.0)
        assert event.tag.number == 1

    def test_single_emission_per_visit(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(), OutputPolicyConfig(delay_s=5.0, on_scan_complete=False), sink
        )
        # Reads every epoch: still only one event for the visit.
        for epoch in epochs_with_read_at(set(range(40)), total=50):
            pipeline.step(epoch)
        assert len(sink) == 1

    def test_revisit_rearms(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(), OutputPolicyConfig(delay_s=5.0, on_scan_complete=False), sink
        )
        # Two visits separated by more than VISIT_GAP_S (30 s).
        for epoch in epochs_with_read_at({0, 80}, total=120):
            pipeline.step(epoch)
        assert len(sink) == 2

    def test_statistics_attached(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(), OutputPolicyConfig(delay_s=0.0, on_scan_complete=False), sink
        )
        pipeline.step(epochs_with_read_at({0}, total=1)[0])
        assert sink.events[0].statistics is not None


class TestScanComplete:
    def test_finish_emits_pending(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(),
            OutputPolicyConfig(delay_s=1000.0, on_scan_complete=True),
            sink,
        )
        for epoch in epochs_with_read_at({5}, total=20):
            pipeline.step(epoch)
        assert len(sink) == 0  # delay never reached
        pipeline.finish()
        assert len(sink) == 1

    def test_finish_no_double_emit(self):
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            FakeEngine(), OutputPolicyConfig(delay_s=2.0, on_scan_complete=True), sink
        )
        for epoch in epochs_with_read_at({0}, total=20):
            pipeline.step(epoch)
        pipeline.finish()
        assert len(sink) == 1

    def test_finish_on_empty_pipeline(self):
        pipeline = CleaningPipeline(FakeEngine())
        pipeline.finish()  # must not raise


class TestMovementTrigger:
    def test_movement_reemission(self):
        class MovingEngine(FakeEngine):
            def object_estimate(self, number):
                y = 1.0 + 0.2 * self.epoch_index
                return LocationEstimate(
                    np.array([2.0, y, 0.0]), 0.01 * np.eye(3), 100
                )

        sink = CollectingSink()
        pipeline = CleaningPipeline(
            MovingEngine(),
            OutputPolicyConfig(
                delay_s=2.0, on_scan_complete=False, movement_threshold_ft=1.0
            ),
            sink,
        )
        for epoch in epochs_with_read_at(set(range(30)), total=30):
            pipeline.step(epoch)
        # First delayed event plus movement-triggered re-emissions.
        assert len(sink) >= 3


class TestRun:
    def test_run_returns_sink(self, small_model, fast_config):
        from repro.inference.factored import FactoredParticleFilter

        engine = FactoredParticleFilter(small_model, fast_config)
        pipeline = CleaningPipeline(engine, OutputPolicyConfig(delay_s=3.0))
        epochs = [
            make_epoch(float(t), (0.0, 0.1 * t), object_tags=[0] if t < 6 else [])
            for t in range(12)
        ]
        sink = pipeline.run(epochs)
        assert isinstance(sink, CollectingSink)
        assert len(sink) >= 1
