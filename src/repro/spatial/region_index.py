"""The sensing-region index of Section IV-C (Fig. 4b/4c).

The index has two components, mirroring the paper:

1. a map from each recorded sensing-region bounding box to the set of objects
   that had at least one particle inside that box when it was recorded, and
2. a simplified R*-tree over those bounding boxes.

At each epoch the filter builds the bounding box of the current sensing
region and probes the index; the union of object ids attached to overlapping
past regions is exactly the paper's **Case 2** set ("not read at t but read
before near the current location").  Together with the objects read this
epoch (**Case 1**) these are the only objects processed.

Regions can expire: once the reader has moved on, very old regions no longer
affect which objects *could* have particles near the current location (the
objects' particles were recorded there, and objects rarely move).  The paper
does not describe pruning, but without it the index grows without bound over
multi-scan streams, so we expose an optional ``max_regions`` budget that
evicts the oldest regions (a pure performance knob — evicted objects are
simply re-registered the next time they are read).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import GeometryError
from ..geometry.box import Box
from .rtree import RStarTree


class SensingRegionIndex:
    """Index from past sensing-region boxes to object-id sets."""

    def __init__(self, max_regions: Optional[int] = None, max_entries: int = 16):
        if max_regions is not None and max_regions < 1:
            raise GeometryError("max_regions must be positive")
        self._tree = RStarTree(max_entries=max_entries)
        self._regions: "OrderedDict[int, Tuple[Box, Set[int]]]" = OrderedDict()
        self._next_id = 0
        self._max_regions = max_regions
        self._max_entries = max_entries

    def __len__(self) -> int:
        return len(self._regions)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record(self, box: Box, object_ids: Iterable[int]) -> int:
        """Record a sensing region and the objects with particles inside it.

        Returns the internal region id (useful for tests).  Regions with no
        attached objects are still recorded — a later reading of a new object
        in the same place attaches through a subsequent record, but an empty
        region also (correctly) yields no Case-2 candidates.
        """
        ids = set(int(i) for i in object_ids)
        region_id = self._next_id
        self._next_id += 1
        self._regions[region_id] = (box, ids)
        self._tree.insert(box, region_id)
        if self._max_regions is not None:
            while len(self._regions) > self._max_regions:
                self._evict_oldest()
        return region_id

    def attach(self, region_id: int, object_ids: Iterable[int]) -> bool:
        """Attach more objects to an existing region.

        Returns ``True`` when the region's object set actually grew —
        re-attaching already-attached objects is a no-op, and callers
        tracking snapshot dirtiness rely on that distinction.
        """
        if region_id not in self._regions:
            raise GeometryError(f"unknown region id {region_id}")
        ids = self._regions[region_id][1]
        before = len(ids)
        ids.update(int(i) for i in object_ids)
        return len(ids) != before

    def contains_region(self, region_id: int) -> bool:
        """Whether a region id is still live (not evicted)."""
        return region_id in self._regions

    def _evict_oldest(self) -> None:
        region_id, (box, _) = next(iter(self._regions.items()))
        del self._regions[region_id]
        self._tree.delete(box, lambda value: value == region_id)

    def remove_object(self, object_id: int) -> bool:
        """Detach an object from every region (e.g. after it moved far away,
        its old particle locations are no longer meaningful).  Returns
        ``True`` when the object was attached anywhere."""
        object_id = int(object_id)
        removed = False
        for _, ids in self._regions.values():
            if object_id in ids:
                ids.discard(object_id)
                removed = True
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def case2_candidates(self, current_box: Box) -> Set[int]:
        """Objects read before near the current sensing region.

        The union of object sets attached to every recorded region whose
        bounding box overlaps ``current_box``.
        """
        out: Set[int] = set()
        for region_id in self._tree.search(current_box):
            _, ids = self._regions[region_id]
            out.update(ids)
        return out

    def overlapping_regions(self, box: Box) -> List[Tuple[Box, FrozenSet[int]]]:
        """All recorded ``(box, object-ids)`` pairs overlapping ``box``."""
        out = []
        for region_id in self._tree.search(box):
            rbox, ids = self._regions[region_id]
            out.append((rbox, frozenset(ids)))
        return out

    def objects_registered(self) -> Set[int]:
        """Every object id attached to at least one region."""
        out: Set[int] = set()
        for _, ids in self._regions.values():
            out.update(ids)
        return out

    # ------------------------------------------------------------------
    # Snapshot / restore (the durable-state subsystem, ``repro.state``)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Serializable content: regions in recording order plus the id
        counter.  The R*-tree itself is not serialized — it is a derived
        structure and is rebuilt by re-inserting the regions, which yields
        identical *query semantics* (overlap search is exact set semantics
        regardless of tree shape)."""
        regions = [
            {
                "id": int(region_id),
                "lo": [float(v) for v in box.lo],
                "hi": [float(v) for v in box.hi],
                "objects": sorted(int(i) for i in ids),
            }
            for region_id, (box, ids) in self._regions.items()
        ]
        return {"next_id": int(self._next_id), "regions": regions}

    def load_snapshot(self, state: Dict[str, object]) -> None:
        """Replace the index content with a :meth:`snapshot`'s regions,
        preserving recording order (which drives ``max_regions`` eviction)
        and the original region ids."""
        self._tree = RStarTree(max_entries=self._max_entries)
        self._regions = OrderedDict()
        for rec in state["regions"]:  # type: ignore[index]
            region_id = int(rec["id"])
            box = Box(tuple(rec["lo"]), tuple(rec["hi"]))
            self._regions[region_id] = (box, set(int(i) for i in rec["objects"]))
            self._tree.insert(box, region_id)
        self._next_id = int(state["next_id"])
        if self._regions and self._next_id <= max(self._regions):
            raise GeometryError("region snapshot id counter behind live ids")
        if self._max_regions is not None:
            while len(self._regions) > self._max_regions:
                self._evict_oldest()

    def check_consistent(self) -> None:
        """Test hook: tree and map must describe the same regions."""
        tree_ids = sorted(value for _, value in self._tree.items())
        map_ids = sorted(self._regions.keys())
        assert tree_ids == map_ids, f"tree ids {tree_ids} != map ids {map_ids}"
        self._tree.check_invariants()
