"""Wire protocol of the ingest service: length-prefixed binary frames.

Every frame is ``u32 length (big-endian) | u8 type | payload``; the length
covers the type byte plus the payload.  Hot-path frames (readings, reports,
credits, emissions, acks) pack fixed-width fields with :mod:`struct`; control
frames (hello, stats, errors) carry UTF-8 JSON — they are rare, and JSON
keeps the handshake extensible without a version dance.

The decoder is sans-IO: feed it byte chunks from any transport (an asyncio
``StreamReader``, a blocking socket, a test buffer) and iterate complete
frames.  Both the service and the replay/subscriber clients share it, so
framing bugs cannot disagree across the two ends.

Flow-control frames (the backpressure contract):

* ``CREDIT n`` — the server grants the source permission to send ``n`` more
  reading/report frames.  Initial credit arrives in ``HELLO_ACK``; sending
  beyond the granted window is a protocol violation (``ERROR`` + close).
* ``PAUSE`` / ``RESUME`` — a global brake on top of per-source credit: when
  the service's total buffered frames cross the configured high water mark
  every source is paused even if it has credit left, and resumed once the
  backlog drains below the low water mark.
* ``END_ACK`` — the server's sign-off after consuming ``SOURCE_END``.  A
  source must keep its connection open until it arrives (or EOF): closing
  earlier races the server's broadcast writes, and a write into the closed
  socket poisons the server's stream reader, discarding any of the
  source's frames still buffered unread.

Exactly-once hooks:

* data frames carry a per-source ``seq`` (1-based, strictly +1); the
  ``HELLO_ACK`` returns the highest sequence the server has already consumed
  into a checkpointed epoch, so a reconnecting client skips what survived.
* ``EMIT`` frames carry the emission's log offset; subscribers ``ACK``
  offsets back, and the acked offset rides inside the next checkpoint.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ServeError
from ..streams.records import ReaderLocationReport, TagId, TagKind, TagReading

# Frame type codes (u8 on the wire).
HELLO = 1  # json: {role, source, kind?, last_seq?, from_offset?}
HELLO_ACK = 2  # json: {resume_seq?, credit?, epoch_origin?, next_offset?}
READING = 3  # packed: seq u64, time f64, tag kind u8, tag number u32
REPORT = 4  # packed: seq u64, time f64, x/y/z f64, has_heading u8, heading f64
SOURCE_END = 5  # empty: the source's stream is complete (scan finished)
CREDIT = 6  # packed: u32 additional frames the source may send
PAUSE = 7  # empty
RESUME = 8  # empty
EMIT = 9  # packed u64 offset + u8 flags (bit 0: degraded) + raw log line
ACK = 10  # packed: u64 highest delivered offset (inclusive)
STATS = 11  # empty: request a stats snapshot
STATS_REPLY = 12  # json: the service's metrics document
ERROR = 13  # json: {error}
END_ACK = 14  # empty: the server consumed the stream through SOURCE_END
RESHARD = 15  # json: {n_shards} — request a live shard-layout change
RESHARD_ACK = 16  # json: {queued, n_shards} — the request is scheduled

FRAME_NAMES = {
    HELLO: "HELLO",
    HELLO_ACK: "HELLO_ACK",
    READING: "READING",
    REPORT: "REPORT",
    SOURCE_END: "SOURCE_END",
    CREDIT: "CREDIT",
    PAUSE: "PAUSE",
    RESUME: "RESUME",
    EMIT: "EMIT",
    ACK: "ACK",
    STATS: "STATS",
    STATS_REPLY: "STATS_REPLY",
    ERROR: "ERROR",
    END_ACK: "END_ACK",
    RESHARD: "RESHARD",
    RESHARD_ACK: "RESHARD_ACK",
}

_LEN = struct.Struct("!I")
_READING = struct.Struct("!QdBI")
_REPORT = struct.Struct("!QddddBd")
_CREDIT = struct.Struct("!I")
_OFFSET = struct.Struct("!Q")
_EMIT_HEAD = struct.Struct("!QB")

#: EMIT flags (u8 on the wire).  Bit 0 marks an emission computed while the
#: runtime was recovering a shard — the line bytes are still authoritative
#: (and identical to a fault-free run), the flag only describes freshness.
EMIT_FLAG_DEGRADED = 0x01

#: Tag kinds on the wire (u8) — stable codes, not enum ordinals.
_TAG_KIND_CODE = {TagKind.OBJECT: 0, TagKind.SHELF: 1}
_TAG_KIND_FROM_CODE = {0: TagKind.OBJECT, 1: TagKind.SHELF}

#: Default frame-size guard; the service overrides from its ServeConfig.
MAX_FRAME_BYTES = 1 << 20


@dataclass(frozen=True)
class Frame:
    """One decoded frame: the type code plus a payload-specific value.

    ``data`` is a dict for JSON frames, a :class:`TagReading` /
    :class:`ReaderLocationReport` (with ``seq``) for data frames, an int for
    CREDIT/ACK/EMIT offsets, ``None`` for empty frames; EMIT also carries
    the raw log line in ``line`` and its freshness flag in ``degraded``.
    """

    kind: int
    data: Any = None
    seq: int = 0
    line: Optional[bytes] = None
    degraded: bool = False

    @property
    def name(self) -> str:
        return FRAME_NAMES.get(self.kind, f"type {self.kind}")


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def _wrap(kind: int, payload: bytes = b"") -> bytes:
    return _LEN.pack(len(payload) + 1) + bytes([kind]) + payload


def _wrap_json(kind: int, doc: Dict[str, Any]) -> bytes:
    return _wrap(kind, json.dumps(doc, sort_keys=True).encode())


def encode_hello(
    role: str,
    source: Optional[str] = None,
    last_seq: Optional[int] = None,
    from_offset: Optional[int] = None,
) -> bytes:
    """Handshake: ``role`` is ``"source"``, ``"subscribe"`` or ``"stats"``."""
    doc: Dict[str, Any] = {"role": role}
    if source is not None:
        doc["source"] = source
    if last_seq is not None:
        doc["last_seq"] = int(last_seq)
    if from_offset is not None:
        doc["from_offset"] = int(from_offset)
    return _wrap_json(HELLO, doc)


def encode_hello_ack(**fields: Any) -> bytes:
    return _wrap_json(HELLO_ACK, fields)


def encode_reading(seq: int, reading: TagReading) -> bytes:
    return _wrap(
        READING,
        _READING.pack(
            seq,
            reading.time,
            _TAG_KIND_CODE[reading.tag.kind],
            reading.tag.number,
        ),
    )


def encode_report(seq: int, report: ReaderLocationReport) -> bytes:
    x, y, z = report.position
    has_heading = report.heading is not None
    return _wrap(
        REPORT,
        _REPORT.pack(
            seq,
            report.time,
            x,
            y,
            z,
            1 if has_heading else 0,
            report.heading if has_heading else 0.0,
        ),
    )


def encode_source_end() -> bytes:
    return _wrap(SOURCE_END)


def encode_end_ack() -> bytes:
    return _wrap(END_ACK)


def encode_credit(n: int) -> bytes:
    return _wrap(CREDIT, _CREDIT.pack(n))


def encode_pause() -> bytes:
    return _wrap(PAUSE)


def encode_resume() -> bytes:
    return _wrap(RESUME)


def encode_emit(offset: int, line: bytes, degraded: bool = False) -> bytes:
    flags = EMIT_FLAG_DEGRADED if degraded else 0
    return _wrap(EMIT, _EMIT_HEAD.pack(offset, flags) + line)


def encode_ack(offset: int) -> bytes:
    return _wrap(ACK, _OFFSET.pack(offset))


def encode_stats_request() -> bytes:
    return _wrap(STATS)


def encode_stats_reply(stats: Dict[str, Any]) -> bytes:
    return _wrap_json(STATS_REPLY, stats)


def encode_error(message: str) -> bytes:
    return _wrap_json(ERROR, {"error": str(message)})


def encode_reshard(n_shards: int) -> bytes:
    return _wrap_json(RESHARD, {"n_shards": int(n_shards)})


def encode_reshard_ack(n_shards: int) -> bytes:
    return _wrap_json(RESHARD_ACK, {"queued": True, "n_shards": int(n_shards)})


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------
def _decode_payload(kind: int, payload: bytes) -> Frame:
    try:
        if kind == READING:
            seq, time, kind_code, number = _READING.unpack(payload)
            tag_kind = _TAG_KIND_FROM_CODE.get(kind_code)
            if tag_kind is None:
                raise ServeError(f"unknown tag kind code {kind_code}")
            return Frame(READING, TagReading(time, TagId(tag_kind, number)), seq=seq)
        if kind == REPORT:
            seq, time, x, y, z, has_heading, heading = _REPORT.unpack(payload)
            report = ReaderLocationReport(
                time, (x, y, z), heading if has_heading else None
            )
            return Frame(REPORT, report, seq=seq)
        if kind == CREDIT:
            return Frame(CREDIT, _CREDIT.unpack(payload)[0])
        if kind in (ACK,):
            return Frame(kind, _OFFSET.unpack(payload)[0])
        if kind == EMIT:
            offset, flags = _EMIT_HEAD.unpack(payload[: _EMIT_HEAD.size])
            return Frame(
                EMIT,
                offset,
                line=payload[_EMIT_HEAD.size :],
                degraded=bool(flags & EMIT_FLAG_DEGRADED),
            )
        if kind in (SOURCE_END, END_ACK, PAUSE, RESUME, STATS):
            if payload:
                raise ServeError(f"{FRAME_NAMES[kind]} frame carries a payload")
            return Frame(kind)
        if kind in (HELLO, HELLO_ACK, STATS_REPLY, ERROR, RESHARD, RESHARD_ACK):
            doc = json.loads(payload.decode())
            if not isinstance(doc, dict):
                raise ServeError(f"{FRAME_NAMES[kind]} payload is not an object")
            return Frame(kind, doc)
    except ServeError:
        raise
    except (struct.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(
            f"malformed {FRAME_NAMES.get(kind, kind)} frame: {exc}"
        ) from exc
    raise ServeError(f"unknown frame type {kind}")


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte-chunk transport.

    ``feed`` buffers bytes; ``frames()`` yields every complete frame and
    leaves a partial tail buffered for the next feed.  Oversized or
    malformed frames raise :class:`ServeError` — the connection is beyond
    recovery once framing desynchronizes, so the caller should close it.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self._max = int(max_frame_bytes)

    def feed(self, chunk: bytes) -> None:
        self._buffer.extend(chunk)

    def frames(self) -> Iterator[Frame]:
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length < 1:
                raise ServeError("zero-length frame")
            if length > self._max:
                raise ServeError(
                    f"frame of {length} bytes exceeds the {self._max}-byte limit"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                return
            kind = self._buffer[_LEN.size]
            payload = bytes(self._buffer[_LEN.size + 1 : end])
            del self._buffer[:end]
            yield _decode_payload(kind, payload)

    def feed_frames(self, chunk: bytes) -> List[Frame]:
        """Convenience: feed one chunk and collect its completed frames."""
        self.feed(chunk)
        return list(self.frames())

    @property
    def buffered(self) -> int:
        return len(self._buffer)


def decode_frames(data: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> List[Frame]:
    """Decode a complete byte string; trailing partial frames are an error."""
    decoder = FrameDecoder(max_frame_bytes)
    out = decoder.feed_frames(data)
    if decoder.buffered:
        raise ServeError(f"{decoder.buffered} trailing bytes after the last frame")
    return out
