"""Tests for traces, ground truth, and persistence."""

import io

import numpy as np
import pytest

from repro.errors import StreamError
from repro.streams.records import ReaderLocationReport, TagId, TagReading
from repro.streams.sources import GroundTruth, ObjectMove, Trace, merge_traces


def tiny_truth(n_epochs=5):
    return GroundTruth(
        initial_positions={0: np.array([1.0, 0.0, 0.0]), 1: np.array([1.0, 2.0, 0.0])},
        moves=[ObjectMove(3, 0, (1.0, 5.0, 0.0))],
        reader_path=np.zeros((n_epochs, 3)),
        reader_headings=np.zeros(n_epochs),
        shelf_tag_positions={9: np.array([1.0, 1.0, 0.0])},
    )


def tiny_trace(offset=0.0, truth=None):
    return Trace(
        readings=[
            TagReading(offset + 0.1, TagId.object(0)),
            TagReading(offset + 1.1, TagId.object(1)),
            TagReading(offset + 1.2, TagId.shelf(9)),
        ],
        reports=[
            ReaderLocationReport(offset + 0.0, (0.0, 0.0, 0.0), heading=0.1),
            ReaderLocationReport(offset + 1.0, (0.0, 0.1, 0.0)),
        ],
        truth=truth,
        metadata={"name": "tiny"},
    )


class TestGroundTruth:
    def test_location_before_and_after_move(self):
        truth = tiny_truth()
        assert truth.object_location_at(0, 0).tolist() == [1.0, 0.0, 0.0]
        assert truth.object_location_at(0, 2).tolist() == [1.0, 0.0, 0.0]
        assert truth.object_location_at(0, 3).tolist() == [1.0, 5.0, 0.0]
        assert truth.object_location_at(0, 10).tolist() == [1.0, 5.0, 0.0]

    def test_unmoved_object_constant(self):
        truth = tiny_truth()
        assert truth.object_location_at(1, 4).tolist() == [1.0, 2.0, 0.0]

    def test_unknown_object_raises(self):
        with pytest.raises(StreamError):
            tiny_truth().object_location_at(42, 0)

    def test_final_locations_reflect_moves(self):
        finals = tiny_truth().final_object_locations()
        assert finals[0].tolist() == [1.0, 5.0, 0.0]
        assert finals[1].tolist() == [1.0, 2.0, 0.0]

    def test_locations_at_midpoint(self):
        locations = tiny_truth().locations_at(2)
        assert locations[0].tolist() == [1.0, 0.0, 0.0]


class TestTrace:
    def test_epochs_synchronized(self):
        epochs = tiny_trace().epochs()
        assert len(epochs) == 2
        assert epochs[0].reported_heading == pytest.approx(0.1)

    def test_counts_and_numbers(self):
        trace = tiny_trace()
        assert trace.n_readings == 3
        assert trace.object_tag_numbers() == [0, 1]
        assert trace.shelf_tag_numbers() == [9]
        assert trace.duration == pytest.approx(1.2)

    def test_roundtrip_persistence(self):
        trace = tiny_trace(truth=tiny_truth())
        text = trace.dumps()
        loaded = Trace.loads(text)
        assert loaded.n_readings == trace.n_readings
        assert loaded.metadata["name"] == "tiny"
        assert loaded.reports[0].heading == pytest.approx(0.1)
        assert loaded.reports[1].heading is None
        assert loaded.truth is not None
        assert loaded.truth.final_object_locations()[0].tolist() == [1.0, 5.0, 0.0]
        assert loaded.truth.shelf_tag_positions[9].tolist() == [1.0, 1.0, 0.0]

    def test_load_rejects_garbage(self):
        with pytest.raises(StreamError):
            Trace.load(io.StringIO("not json\n"))

    def test_load_rejects_unknown_type(self):
        with pytest.raises(StreamError):
            Trace.load(io.StringIO('{"type": "mystery"}\n'))


class TestMerge:
    def test_merge_two_rounds(self):
        a = tiny_trace(0.0, truth=tiny_truth())
        b = tiny_trace(10.0, truth=tiny_truth())
        merged = merge_traces([a, b])
        assert merged.n_readings == 6
        assert merged.truth is not None
        assert merged.truth.reader_path.shape == (10, 3)
        # The second part's move is offset by the first part's epochs.
        move_epochs = [m.epoch_index for m in merged.truth.moves]
        assert 3 in move_epochs and 8 in move_epochs

    def test_merge_rejects_overlap(self):
        a = tiny_trace(0.0)
        b = tiny_trace(0.5)
        with pytest.raises(StreamError):
            merge_traces([a, b])

    def test_merge_empty_raises(self):
        with pytest.raises(StreamError):
            merge_traces([])
