"""Tests for epoch synchronization (Section II-A preprocessing)."""

import math

import pytest

from repro.errors import StreamError
from repro.streams.records import ReaderLocationReport, TagId, TagReading
from repro.streams.synchronize import EpochSynchronizer, synchronize


def reading(t, number, shelf=False):
    return TagReading(t, TagId.shelf(number) if shelf else TagId.object(number))


def report(t, x=0.0, y=0.0, heading=None):
    return ReaderLocationReport(t, (x, y, 0.0), heading=heading)


class TestBatchSynchronize:
    def test_groups_by_epoch(self):
        epochs = synchronize(
            [reading(0.1, 1), reading(0.7, 2), reading(1.2, 3)],
            [report(0.0), report(1.0)],
        )
        assert len(epochs) == 2
        assert {t.number for t in epochs[0].object_tags} == {1, 2}
        assert {t.number for t in epochs[1].object_tags} == {3}

    def test_averages_location_reports(self):
        epochs = synchronize(
            [reading(0.5, 1)],
            [report(0.1, 1.0, 0.0), report(0.9, 3.0, 2.0)],
        )
        assert epochs[0].reported_position == pytest.approx((2.0, 1.0, 0.0))

    def test_circular_heading_mean(self):
        # Headings at +pi-0.1 and -pi+0.1 must average to ~pi, not 0.
        epochs = synchronize(
            [reading(0.5, 1)],
            [
                report(0.1, heading=math.pi - 0.1),
                report(0.9, heading=-math.pi + 0.1),
            ],
        )
        assert abs(abs(epochs[0].reported_heading) - math.pi) < 0.01

    def test_separates_object_and_shelf_tags(self):
        epochs = synchronize(
            [reading(0.5, 1), reading(0.5, 2, shelf=True)], [report(0.5)]
        )
        assert {t.number for t in epochs[0].object_tags} == {1}
        assert {t.number for t in epochs[0].shelf_tags} == {2}

    def test_emit_empty_fills_gaps(self):
        epochs = synchronize(
            [reading(0.5, 1), reading(3.5, 2)],
            [report(0.0), report(3.9)],
            emit_empty=True,
        )
        assert len(epochs) == 4
        assert epochs[1].total_readings == 0
        assert epochs[1].reported_position is None

    def test_no_empty_epochs_when_disabled(self):
        epochs = synchronize(
            [reading(0.5, 1), reading(3.5, 2)],
            [report(0.0), report(3.9)],
            emit_empty=False,
        )
        assert len(epochs) == 2

    def test_custom_epoch_length(self):
        epochs = synchronize(
            [reading(0.0, 1), reading(0.6, 2)],
            [report(0.0), report(0.9)],
            epoch_length=0.5,
        )
        assert len(epochs) == 2
        assert {t.number for t in epochs[0].object_tags} == {1}


class TestOnlineSynchronizer:
    def test_watermark_semantics(self):
        sync = EpochSynchronizer()
        sync.push_reading(reading(0.5, 1))
        sync.push_report(report(0.2))
        # Neither stream has passed epoch 0's end yet.
        assert sync.ready_epochs() == []
        sync.push_reading(reading(1.5, 2))
        sync.push_report(report(1.1))
        ready = sync.ready_epochs()
        assert len(ready) == 1
        assert {t.number for t in ready[0].object_tags} == {1}

    def test_flush_emits_remaining(self):
        sync = EpochSynchronizer()
        sync.push_reading(reading(0.5, 1))
        sync.push_report(report(0.5))
        epochs = sync.flush()
        assert len(epochs) == 1

    def test_rejects_time_regression(self):
        sync = EpochSynchronizer()
        sync.push_reading(reading(1.0, 1))
        with pytest.raises(StreamError):
            sync.push_reading(reading(0.5, 2))
        sync.push_report(report(2.0))
        with pytest.raises(StreamError):
            sync.push_report(report(1.0))

    def test_rejects_bad_epoch_length(self):
        with pytest.raises(StreamError):
            EpochSynchronizer(epoch_length=0.0)

    def test_epoch_times_are_boundaries(self):
        epochs = synchronize(
            [reading(2.3, 1)], [report(2.9)], epoch_length=1.0
        )
        assert epochs[0].time == pytest.approx(2.0)


class TestFlushLifecycle:
    def test_flush_is_idempotent(self):
        sync = EpochSynchronizer()
        sync.push_reading(reading(0.5, 1))
        assert len(sync.flush()) == 1
        assert sync.flush() == []
        assert sync.flush() == []

    def test_flush_on_empty_synchronizer_is_idempotent(self):
        sync = EpochSynchronizer()
        assert sync.flush() == []
        assert sync.flush() == []

    def test_push_reading_after_flush_raises(self):
        sync = EpochSynchronizer()
        sync.push_reading(reading(0.5, 1))
        sync.flush()
        with pytest.raises(StreamError, match="flush"):
            sync.push_reading(reading(5.0, 2))

    def test_push_report_after_flush_raises(self):
        sync = EpochSynchronizer()
        sync.push_report(report(0.5))
        sync.flush()
        with pytest.raises(StreamError, match="flush"):
            sync.push_report(report(5.0))


class TestResumeSeek:
    def test_seek_continues_the_epoch_grid(self):
        sync = EpochSynchronizer(epoch_length=1.0, start_time=0.0)
        sync.seek(3)
        assert sync.next_epoch_index == 3
        sync.push_reading(reading(3.4, 1))
        epochs = sync.flush()
        assert len(epochs) == 1
        assert epochs[0].time == pytest.approx(3.0)

    def test_seek_requires_explicit_origin(self):
        with pytest.raises(StreamError, match="start_time"):
            EpochSynchronizer().seek(2)

    def test_seek_after_use_raises(self):
        sync = EpochSynchronizer(start_time=0.0)
        sync.push_reading(reading(0.5, 1))
        with pytest.raises(StreamError, match="already in use"):
            sync.seek(1)

    def test_negative_seek_raises(self):
        with pytest.raises(StreamError, match=">= 0"):
            EpochSynchronizer(start_time=0.0).seek(-1)

    def test_origin_tracks_first_record_floor(self):
        sync = EpochSynchronizer(epoch_length=1.0)
        assert sync.origin is None
        sync.push_reading(reading(7.3, 1))
        assert sync.origin == pytest.approx(7.0)


class TestExternalWatermark:
    def test_upto_releases_epochs_a_lagging_kind_would_hold(self):
        # Only readings arrive; the internal per-kind watermark stays at
        # -inf for reports, but an external watermark releases anyway.
        sync = EpochSynchronizer(epoch_length=1.0)
        sync.push_reading(reading(0.5, 1))
        sync.push_reading(reading(2.5, 2))
        assert sync.ready_epochs() == []
        released = sync.ready_epochs(upto=2.5)
        assert [e.time for e in released] == [0.0, 1.0]

    def test_record_exactly_at_upto_is_not_released_early(self):
        # A time-t record belongs to the epoch starting at t, which ends
        # after the watermark — it must stay buffered.
        sync = EpochSynchronizer(epoch_length=1.0)
        sync.push_reading(reading(2.0, 1))
        assert sync.ready_epochs(upto=2.0) == []
        epochs = sync.flush()
        assert {t.number for t in epochs[-1].object_tags} == {1}
