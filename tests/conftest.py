"""Shared fixtures for the test suite.

Simulation-backed fixtures are deliberately tiny (few objects, short
traces, few particles) so the whole suite stays fast; the benchmark suite
owns the paper-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import InferenceConfig
from repro.geometry.box import Box
from repro.geometry.shapes import ShelfRegion, ShelfSet
from repro.models.joint import RFIDWorldModel
from repro.models.motion import MotionParams
from repro.models.sensing import SensingNoiseParams
from repro.models.sensor import SensorParams
from repro.simulation.layout import LayoutConfig
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def single_shelf():
    """One shelf box: x in [2, 3], y in [0, 8]."""
    return ShelfSet([ShelfRegion(0, Box((2.0, 0.0, 0.0), (3.0, 8.0, 0.0)))])


@pytest.fixture
def two_shelves():
    """Two parallel shelves mirrored across the aisle."""
    return ShelfSet(
        [
            ShelfRegion(0, Box((2.0, 0.0, 0.0), (3.0, 8.0, 0.0))),
            ShelfRegion(1, Box((-3.0, 0.0, 0.0), (-2.0, 8.0, 0.0))),
        ]
    )


@pytest.fixture
def small_model(single_shelf):
    """A joint model over the single shelf with known dynamics."""
    return RFIDWorldModel.build(
        single_shelf,
        shelf_tags={0: np.array([2.0, 1.0, 0.0]), 1: np.array([2.0, 7.0, 0.0])},
        sensor_params=SensorParams(a=(4.0, 0.0, -0.9), b=(0.0, -6.0)),
        motion_params=MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.01, 0.01, 0.0)),
        sensing_params=SensingNoiseParams(mean=(0.0, 0.0, 0.0), sigma=(0.01, 0.01, 0.0)),
    )


@pytest.fixture
def fast_config():
    """Small particle counts: fast and still accurate on tiny scenes."""
    return InferenceConfig(reader_particles=60, object_particles=120, seed=7)


@pytest.fixture
def small_warehouse():
    """A 6-object warehouse simulator with the paper's default knobs."""
    return WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(n_objects=6, n_shelf_tags=3),
            seed=11,
        )
    )


@pytest.fixture
def small_trace(small_warehouse):
    return small_warehouse.generate()
