"""SMURF: adaptive smoothing-window RFID cleaning (Jeffery et al., VLDB J.).

SMURF is the state-of-the-art cleaning baseline the paper compares against
(Section V-C).  Its core idea: treat each epoch's read attempt as a Bernoulli
trial; size each tag's smoothing window adaptively so that (a) the window is
large enough to catch the tag with high probability if it is present
(completeness: ``w* = ln(1/delta) / p`` from the binomial tail), and (b) a
statistically significant shortfall of reads inside the window signals that
the tag has *left* the range (transition detection via a two-sigma binomial
test), at which point the window halves.

The published SMURF estimates per-epoch read rates from response-count
metadata; our streams carry binary per-epoch observations, so the read rate
is tracked with an EWMA over epochs in which the tag is believed present —
the same estimator the HiFi implementation falls back to for single-read
hardware.  This is the one (documented) deviation.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SmurfConfig:
    """Tuning of the adaptive window."""

    #: Completeness target: miss probability within a window when present.
    delta: float = 0.05
    #: Window bounds (epochs).  The cap limits hysteresis: a departed tag
    #: stays "present" for up to a window after its last read, and location
    #: samples taken in that tail are biased along the scan direction.
    min_window: int = 1
    max_window: int = 12
    #: EWMA factor for the read-rate estimate.
    rate_alpha: float = 0.15
    #: Prior read rate before any evidence.
    initial_rate: float = 0.6
    #: Additive window growth per epoch toward w* (SMURF's AIMD shape).
    growth: int = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.delta < 1.0):
            raise ConfigurationError("delta must be in (0, 1)")
        if self.min_window < 1 or self.max_window < self.min_window:
            raise ConfigurationError("need 1 <= min_window <= max_window")
        if not (0.0 < self.rate_alpha <= 1.0):
            raise ConfigurationError("rate_alpha must be in (0, 1]")
        if not (0.0 < self.initial_rate <= 1.0):
            raise ConfigurationError("initial_rate must be in (0, 1]")


class SmurfTagState:
    """Per-tag adaptive smoothing window."""

    def __init__(self, config: SmurfConfig = SmurfConfig()):
        self.config = config
        self.window = config.min_window
        self.rate = config.initial_rate
        self._history: Deque[bool] = deque(maxlen=config.max_window)
        self.present = False
        #: True on the epoch the tag transitions present -> absent.
        self.departed = False

    # ------------------------------------------------------------------
    def observe(self, read: bool) -> bool:
        """Feed one epoch's observation; returns presence after smoothing."""
        config = self.config
        self._history.append(bool(read))
        was_present = self.present

        if read:
            # Reads while present refine the rate estimate upward/downward.
            self.rate = (1 - config.rate_alpha) * self.rate + config.rate_alpha * 1.0
        elif self.present:
            self.rate = (1 - config.rate_alpha) * self.rate + config.rate_alpha * 0.0
        self.rate = min(max(self.rate, 0.05), 1.0)

        # Completeness-driven target window: w* = ln(1/delta) / p.
        w_star = math.ceil(math.log(1.0 / config.delta) / self.rate)
        w_star = min(max(w_star, config.min_window), config.max_window)

        # Grow additively toward w*; shrink instantly if w* dropped.
        if self.window < w_star:
            self.window = min(self.window + config.growth, w_star)
        else:
            self.window = w_star

        recent = list(self._history)[-self.window:]
        count = sum(recent)

        transition = False
        if was_present and len(recent) >= 2:
            expected = self.window * self.rate
            slack = 2.0 * math.sqrt(self.window * self.rate * (1.0 - self.rate))
            if count < expected - slack:
                transition = True

        if transition:
            # Binomial test says the tag left: halve the window (AIMD) and
            # declare absence even if stale reads remain in the history.
            self.window = max(self.window // 2, config.min_window)
            self.present = False
        else:
            self.present = count >= 1

        self.departed = was_present and not self.present
        return self.present


class SmurfFilter:
    """Multi-tag SMURF smoother over synchronized epochs.

    Produces, per epoch, the set of tags deemed present.  Location-less —
    :mod:`repro.baselines.smurf_location` adds the paper's location-sampling
    augmentation on top.
    """

    def __init__(self, config: SmurfConfig = SmurfConfig()):
        self.config = config
        self._tags: Dict[int, SmurfTagState] = {}
        self.epoch_index = -1

    def state(self, number: int) -> Optional[SmurfTagState]:
        return self._tags.get(number)

    def known_tags(self) -> List[int]:
        return sorted(self._tags)

    def step(self, read_numbers: Iterable[int]) -> Tuple[List[int], List[int]]:
        """Advance one epoch.

        Returns ``(present, departed)`` tag-number lists.  Tags are tracked
        from their first read onward.
        """
        self.epoch_index += 1
        reads = set(int(n) for n in read_numbers)
        for number in reads:
            if number not in self._tags:
                self._tags[number] = SmurfTagState(self.config)
        present: List[int] = []
        departed: List[int] = []
        for number, state in self._tags.items():
            state.observe(number in reads)
            if state.present:
                present.append(number)
            if state.departed:
                departed.append(number)
        return sorted(present), sorted(departed)
