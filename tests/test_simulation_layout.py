"""Tests for warehouse layout construction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.layout import LayoutConfig, WarehouseLayout


class TestLayoutConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            LayoutConfig(n_objects=0)
        with pytest.raises(SimulationError):
            LayoutConfig(object_spacing_ft=0)
        with pytest.raises(SimulationError):
            LayoutConfig(n_shelf_tags=-1)


class TestBuild:
    def test_object_placement(self):
        layout = WarehouseLayout.build(
            LayoutConfig(n_objects=5, object_spacing_ft=0.5, shelf_x_ft=2.0)
        )
        assert len(layout.object_positions) == 5
        ys = [layout.object_positions[i][1] for i in range(5)]
        assert ys == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
        assert all(layout.object_positions[i][0] == 2.0 for i in range(5))

    def test_shelf_tags_span_layout(self):
        layout = WarehouseLayout.build(LayoutConfig(n_objects=9, n_shelf_tags=3))
        ys = sorted(p[1] for p in layout.shelf_tag_positions.values())
        lo, hi = layout.span_y
        assert ys[0] == pytest.approx(lo)
        assert ys[-1] == pytest.approx(hi)

    def test_single_shelf_tag_centered(self):
        layout = WarehouseLayout.build(LayoutConfig(n_objects=9, n_shelf_tags=1))
        lo, hi = layout.span_y
        assert layout.shelf_tag_positions[0][1] == pytest.approx((lo + hi) / 2)

    def test_zero_shelf_tags(self):
        layout = WarehouseLayout.build(LayoutConfig(n_shelf_tags=0))
        assert layout.shelf_tag_positions == {}

    def test_shelves_cover_objects(self):
        layout = WarehouseLayout.build(LayoutConfig(n_objects=30))
        numbers, table = layout.object_array()
        assert layout.shelves.contains_points(table).all()

    def test_shelf_segments_tile(self):
        layout = WarehouseLayout.build(
            LayoutConfig(n_objects=40, object_spacing_ft=0.5, shelf_segment_ft=4.0)
        )
        assert len(layout.shelves) >= 5
        boxes = sorted((s.box.lo[1], s.box.hi[1]) for s in layout.shelves)
        for (lo_a, hi_a), (lo_b, hi_b) in zip(boxes, boxes[1:]):
            assert hi_a == pytest.approx(lo_b)  # contiguous, no gaps

    def test_object_array_sorted(self):
        layout = WarehouseLayout.build(LayoutConfig(n_objects=7))
        numbers, table = layout.object_array()
        assert numbers == sorted(numbers)
        assert table.shape == (7, 3)
