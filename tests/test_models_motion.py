"""Tests for the reader motion model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.motion import MotionParams, ReaderMotionModel


class TestMotionParams:
    def test_defaults_valid(self):
        params = MotionParams()
        assert params.velocity_array.tolist() == [0.0, 0.1, 0.0]

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            MotionParams(sigma=(-0.1, 0.0, 0.0))

    def test_rejects_nonfinite_velocity(self):
        with pytest.raises(ConfigurationError):
            MotionParams(velocity=(float("inf"), 0.0, 0.0))


class TestPropagate:
    def test_mean_displacement_matches_velocity(self, rng):
        model = ReaderMotionModel(MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.01, 0.01, 0.0)))
        positions = np.zeros((5000, 3))
        headings = np.zeros(5000)
        new_positions, _ = model.propagate(positions, headings, rng)
        delta = new_positions.mean(axis=0)
        assert delta[1] == pytest.approx(0.1, abs=0.002)
        assert delta[0] == pytest.approx(0.0, abs=0.002)
        assert new_positions[:, 2].std() == 0.0  # z noise disabled

    def test_noise_scale(self, rng):
        model = ReaderMotionModel(MotionParams(velocity=(0, 0, 0), sigma=(0.05, 0.2, 0.0)))
        new_positions, _ = model.propagate(np.zeros((8000, 3)), np.zeros(8000), rng)
        assert new_positions[:, 0].std() == pytest.approx(0.05, rel=0.1)
        assert new_positions[:, 1].std() == pytest.approx(0.2, rel=0.1)

    def test_velocity_override(self, rng):
        model = ReaderMotionModel(MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.0, 0.0, 0.0)))
        new_positions, _ = model.propagate(
            np.zeros((3, 3)), np.zeros(3), rng, velocity_override=np.array([1.0, 0.0, 0.0])
        )
        assert new_positions[:, 0].tolist() == pytest.approx([1.0, 1.0, 1.0])

    def test_headings_wrap(self, rng):
        model = ReaderMotionModel(MotionParams(heading_sigma=0.5))
        headings = np.full(1000, 3.1)
        _, new_headings = model.propagate(np.zeros((1000, 3)), headings, rng)
        assert (new_headings <= np.pi).all()
        assert (new_headings > -np.pi).all()

    def test_zero_heading_sigma_keeps_headings(self, rng):
        model = ReaderMotionModel(MotionParams(heading_sigma=0.0))
        headings = np.array([0.5, -0.5])
        _, new_headings = model.propagate(np.zeros((2, 3)), headings, rng)
        assert new_headings.tolist() == pytest.approx([0.5, -0.5])


class TestLogTransition:
    def test_peak_at_expected_displacement(self):
        model = ReaderMotionModel(MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.01, 0.01, 0.0)))
        old = np.zeros((3, 3))
        new = np.array([[0.0, 0.1, 0.0], [0.0, 0.2, 0.0], [0.05, 0.1, 0.0]])
        ll = model.log_transition(old, new)
        assert ll[0] > ll[1]
        assert ll[0] > ll[2]

    def test_degenerate_axis_penalizes_impossible(self):
        model = ReaderMotionModel(MotionParams(velocity=(0, 0, 0), sigma=(0.01, 0.01, 0.0)))
        old = np.zeros((2, 3))
        new = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        ll = model.log_transition(old, new)
        assert ll[0] > ll[1]
        assert ll[1] < -1e5
