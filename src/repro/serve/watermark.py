"""Multi-source low-watermark alignment into epochs.

The batch pipeline hands :class:`~repro.streams.synchronize.EpochSynchronizer`
two globally time-sorted streams.  A live service instead sees K independent
socket sources, each internally time-ordered but mutually interleaved by
network luck.  :class:`WatermarkAligner` restores the batch contract:

* each source's frames are buffered in arrival order and validated — strict
  ``+1`` sequence numbers (gaps mean lost frames: protocol violation) and
  non-decreasing per-source times;
* the **low watermark** is the minimum frontier (time of the newest accepted
  record) over all sources that have not sent ``SOURCE_END`` — every record
  at or below it can no longer be preceded by unseen data, so those records
  are fed to one shared :class:`EpochSynchronizer` in global ``(time,
  source, seq)`` order, reproducing exactly the epochs the batch path would
  build from the union of the streams;
* when every source has ended, the remaining buffer is drained and the
  synchronizer flushed — the terminal state.

Exactly-once ingest bookkeeping rides on top: every emitted epoch carries a
``source_seqs`` snapshot — for each source, the highest sequence number
consumed into this or an earlier epoch.  Per-source times are monotone, so
``seq > snapshot[source]`` holds exactly for the records belonging to later
epochs; a service checkpoint at epoch E stores the snapshot, and a client
reconnecting after a crash is told to resend from ``snapshot[source] + 1`` —
no lost records, and replays of older sequences are deduplicated here.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ServeError, StreamError
from ..streams.records import Epoch, ReaderLocationReport, TagReading
from ..streams.synchronize import EpochSynchronizer

Record = object  # TagReading | ReaderLocationReport


@dataclass
class AlignedEpoch:
    """One epoch released by the watermark, with its resume bookkeeping."""

    epoch: Epoch
    #: Index on the synchronizer's epoch grid (resume seeks past these).
    index: int
    #: Highest consumed sequence number per source *after* this epoch.
    source_seqs: Dict[str, int]
    #: ``time.perf_counter()`` at release — frame-to-emission latency base.
    stamp: float = field(default_factory=_time.perf_counter)


class _Source:
    __slots__ = (
        "name",
        "last_seq",
        "frontier",
        "ended",
        "pending",
        "infly",
        "consumed_seq",
        "unclaimed",
        "deduped",
    )

    def __init__(self, name: str, start_seq: int):
        self.name = name
        #: Highest sequence accepted (dedupe floor for reconnects).
        self.last_seq = int(start_seq)
        #: Time of the newest accepted record (-inf before the first).
        self.frontier = -float("inf")
        self.ended = False
        #: Accepted records not yet fed to the synchronizer.
        self.pending: Deque[Tuple[int, float, Record]] = deque()
        #: (seq, time) of records fed but not yet attributed to an epoch.
        self.infly: Deque[Tuple[int, float]] = deque()
        #: Highest sequence attributed to an emitted epoch.
        self.consumed_seq = int(start_seq)
        #: Frames consumed since the last ``take_consumed`` (credit refill).
        self.unclaimed = 0
        self.deduped = 0

    @property
    def buffered(self) -> int:
        return len(self.pending) + len(self.infly)


class WatermarkAligner:
    """Order K live sources behind a low watermark into one epoch stream.

    Parameters
    ----------
    epoch_length:
        Epoch width handed to the underlying synchronizer.
    origin / start_epoch_index / resume_seqs:
        The resume triple, read from a checkpoint manifest's extras: the
        recorded epoch-grid origin, the next epoch index to emit, and each
        source's consumed sequence number.  Fresh services pass none of
        them.
    emit_empty:
        Forwarded to the synchronizer (empty epochs are negative evidence).
    """

    def __init__(
        self,
        epoch_length: float = 1.0,
        origin: Optional[float] = None,
        start_epoch_index: int = 0,
        resume_seqs: Optional[Dict[str, int]] = None,
        emit_empty: bool = True,
    ):
        self._len = float(epoch_length)
        self._sync = EpochSynchronizer(
            epoch_length=epoch_length, start_time=origin, emit_empty=emit_empty
        )
        if start_epoch_index:
            self._sync.seek(start_epoch_index)
        self._resume_seqs = dict(resume_seqs or {})
        self._sources: Dict[str, _Source] = {}
        self._finished = False
        #: Everything at or below this time has been fed downstream; a
        #: record below it can never be placed (its epoch may already be
        #: emitted), so pushes below it are that source's protocol error.
        self._fed_upto = -float("inf")

    # ------------------------------------------------------------------
    # Source lifecycle
    # ------------------------------------------------------------------
    def register(self, name: str) -> int:
        """Admit (or re-admit) a source; returns its resume sequence.

        The return value is the highest sequence this aligner already holds
        for the source — buffered or consumed — so a (re)connecting client
        must send ``resume + 1`` next.  A brand-new source starts at the
        checkpointed sequence when one was recorded, else 0.
        """
        if self._finished:
            raise ServeError("stream already flushed; no new sources")
        source = self._sources.get(name)
        if source is None:
            source = _Source(name, self._resume_seqs.get(name, 0))
            self._sources[name] = source
        elif source.ended:
            raise ServeError(f"source {name!r} already ended its stream")
        return source.last_seq

    def unregister(self, name: str) -> None:
        """Forget a source that holds no data — the admission-failure path.

        ``register`` precedes admission control in the service's HELLO
        handling; when admission then rejects the source the registration
        must be rolled back, or its ``-inf`` frontier would pin the low
        watermark forever (nothing ever unregisters a rejected connection).
        Only pristine sources are removed: one with buffered or in-flight
        records, an accepted frontier, or an ended stream holds real state
        a reconnect must resume, and is kept.
        """
        source = self._sources.get(name)
        if source is None or source.ended:
            return
        if source.pending or source.infly or source.frontier > -float("inf"):
            return
        del self._sources[name]

    def end_source(self, name: str) -> None:
        """The source's stream is complete; it stops holding the watermark."""
        source = self._require(name)
        source.ended = True

    def _require(self, name: str) -> _Source:
        try:
            return self._sources[name]
        except KeyError:
            raise ServeError(f"unknown source {name!r}") from None

    # ------------------------------------------------------------------
    # Pushing frames
    # ------------------------------------------------------------------
    def push(self, name: str, seq: int, record: Record) -> bool:
        """Buffer one validated record.  Returns False for a deduplicated
        replay (sequence at or below the resume floor), True when buffered
        — only buffered frames count against the source's credit window."""
        source = self._require(name)
        if source.ended:
            raise ServeError(f"source {name!r} sent data after SOURCE_END")
        if seq <= source.last_seq:
            source.deduped += 1
            return False
        if seq != source.last_seq + 1:
            raise ServeError(
                f"source {name!r} skipped sequences: expected "
                f"{source.last_seq + 1}, got {seq}"
            )
        time = float(record.time)
        if time < source.frontier:
            raise StreamError(
                f"source {name!r} went backwards in time: {time} < "
                f"{source.frontier}"
            )
        if time < self._fed_upto:
            # A source that registered after the watermark already passed
            # its data (other sources raced ahead before this one's HELLO)
            # cannot be merged — its epochs may already be emitted.  Fail
            # the *source*, not the service; coordinated clients avoid this
            # by completing every HELLO before any session sends data.
            raise ServeError(
                f"source {name!r} joined behind the stream: record at "
                f"{time} is below the fed watermark {self._fed_upto}"
            )
        source.last_seq = seq
        source.frontier = time
        source.pending.append((seq, time, record))
        return True

    # ------------------------------------------------------------------
    # Pulling epochs
    # ------------------------------------------------------------------
    def watermark(self) -> float:
        """Low watermark: min frontier over active sources (+inf when all
        have ended, -inf while any active source has sent nothing)."""
        active = [s.frontier for s in self._sources.values() if not s.ended]
        if not active:
            return float("inf")
        return min(active)

    def poll(self) -> List[AlignedEpoch]:
        """Feed everything at or below the watermark; return released epochs.

        When every source has ended, the terminal flush runs exactly once
        and the aligner refuses further sources.
        """
        if self._finished or not self._sources:
            return []
        watermark = self.watermark()
        all_ended = watermark == float("inf")
        batch: List[Tuple[float, str, int, Record]] = []
        for source in self._sources.values():
            while source.pending and source.pending[0][1] <= watermark:
                seq, time, record = source.pending.popleft()
                source.infly.append((seq, time))
                batch.append((time, source.name, seq, record))
        batch.sort(key=itemgetter(0, 1, 2))
        for _, _, _, record in batch:
            if isinstance(record, TagReading):
                self._sync.push_reading(record)
            else:
                self._sync.push_report(record)
        first_index = self._sync.next_epoch_index
        if all_ended:
            epochs = self._sync.ready_epochs()
            epochs.extend(self._sync.flush())
            self._finished = True
        else:
            self._fed_upto = max(self._fed_upto, watermark)
            # The aligner's watermark is a stronger release guarantee than
            # the synchronizer's per-kind one: everything at or below it has
            # been fed, even when one record kind lags behind the other.
            epochs = self._sync.ready_epochs(upto=watermark)
        out: List[AlignedEpoch] = []
        for i, epoch in enumerate(epochs):
            end = epoch.time + self._len
            for source in self._sources.values():
                while source.infly and source.infly[0][1] < end:
                    seq, _ = source.infly.popleft()
                    source.consumed_seq = seq
                    source.unclaimed += 1
            out.append(
                AlignedEpoch(
                    epoch=epoch,
                    index=first_index + i,
                    source_seqs={
                        s.name: s.consumed_seq for s in self._sources.values()
                    },
                )
            )
        if all_ended and out:
            # The flush's last epoch covers every remaining record; any
            # straggler attribution (exact boundary ties) folds into it.
            for source in self._sources.values():
                while source.infly:
                    seq, _ = source.infly.popleft()
                    source.consumed_seq = seq
                    source.unclaimed += 1
                out[-1].source_seqs[source.name] = source.consumed_seq
        return out

    def has_releasable(self) -> bool:
        """True when another :meth:`poll` would release work right now.

        That is the case when some pending record sits at or below the
        current watermark, when the watermark advanced past what was last
        fed (already-fed records may complete an epoch the synchronizer was
        holding), or when every source has ended and the terminal flush is
        still owed.  The service's pause release is gated on this: a global
        pause persists while the backlog can still drain, and is only
        force-cleared once the residue above the watermark is all that
        remains (which no amount of waiting shrinks).
        """
        if self._finished or not self._sources:
            return False
        watermark = self.watermark()
        if watermark == float("inf"):
            return True  # terminal flush pending
        if watermark > self._fed_upto:
            return True
        return any(
            s.pending and s.pending[0][1] <= watermark
            for s in self._sources.values()
        )

    def take_consumed(self) -> Dict[str, int]:
        """Frames consumed into epochs since the last call, per source —
        the ingest controller turns these into CREDIT grants."""
        out: Dict[str, int] = {}
        for source in self._sources.values():
            if source.unclaimed:
                out[source.name] = source.unclaimed
                source.unclaimed = 0
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def origin(self) -> Optional[float]:
        return self._sync.origin

    @property
    def next_epoch_index(self) -> int:
        return self._sync.next_epoch_index

    def buffered(self, name: str) -> int:
        return self._require(name).buffered

    def total_buffered(self) -> int:
        return sum(s.buffered for s in self._sources.values())

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def active_sources(self) -> int:
        return sum(1 for s in self._sources.values() if not s.ended)

    def stats(self) -> Dict[str, object]:
        watermark = self.watermark()
        frontiers = [s.frontier for s in self._sources.values()]
        newest = max(frontiers, default=-float("inf"))
        lag = (
            newest - watermark
            if newest > -float("inf") and watermark not in (float("inf"), -float("inf"))
            else 0.0
        )
        return {
            "sources": {
                s.name: {
                    "queue_depth": s.buffered,
                    "last_seq": s.last_seq,
                    "consumed_seq": s.consumed_seq,
                    "deduped": s.deduped,
                    "ended": s.ended,
                }
                for s in self._sources.values()
            },
            "watermark": None if watermark in (float("inf"), -float("inf")) else watermark,
            "watermark_lag_s": float(max(0.0, lag)),
            "buffered_frames": self.total_buffered(),
            "next_epoch_index": self.next_epoch_index,
            "origin": self.origin,
            "finished": self._finished,
        }
