"""The factored particle filter (Section IV-B), with optional spatial
indexing (Section IV-C) and belief compression (Section IV-D).

Data structures follow Fig. 3 of the paper:

* a list of **reader particles** — reader pose hypotheses with weights;
* per object, a list of **object particles**, each holding a location
  hypothesis, a *pointer to a reader particle* (the ``parents`` array), and
  a weight;
* an index from tag id to the object's particles (the ``_beliefs`` dict).

Factored weight semantics (Eq. 5): the implicit unfactored particle weight is
the reader weight times the product of per-object weights; the filter only
ever manipulates the factors, in log space.

The resampling step is the paper's one omitted detail (deferred to a
now-unavailable tech report); DESIGN.md Section 3.4 documents the
reconstruction implemented here:

* object particles resample per-object on low ESS, preserving parent
  pointers;
* reader particles resample on low ESS with *feedback-augmented* weights —
  each active object contributes the mean per-reader likelihood of its
  attached particles, favouring "reader particles that are associated with
  good object particles";
* after a reader resample, parent pointers are remapped through the ancestor
  map; pointers to dropped readers are re-pointed to a random surviving
  reader (post-resampling readers are i.i.d. posterior draws, so this is
  distributionally consistent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..config import InferenceConfig
from ..errors import InferenceError
from ..geometry.cone import Cone
from ..models.joint import RFIDWorldModel
from ..models.priors import ReinitDecision, SensorBasedInitializer, classify_redetection
from ..streams.records import Epoch
from .base import (
    effective_sample_size,
    normalize_log_weights,
    resample_log_weights,
    stratified_heading_mean,
    systematic_resample,
)
from .compression import (
    CompressionCandidate,
    GaussianBelief,
    compression_error,
    select_for_compression,
)
from .estimates import LocationEstimate
from .spatial import ActiveSetSelector


@dataclass
class ObjectBelief:
    """Belief state for one object: particle cloud or compressed Gaussian."""

    particles: Optional[np.ndarray]  # (K, 3), None when compressed
    parents: Optional[np.ndarray]  # (K,) int32 pointers into reader particles
    log_weights: Optional[np.ndarray]  # (K,)
    gaussian: Optional[GaussianBelief]
    created_epoch: int
    last_read_epoch: int
    last_read_anchor: np.ndarray  # reader location at the last read
    last_split_epoch: int = -(10**9)  # last SPLIT/RESET (cooldown bookkeeping)

    @property
    def compressed(self) -> bool:
        return self.gaussian is not None

    @property
    def particle_count(self) -> int:
        return 0 if self.particles is None else int(self.particles.shape[0])

    def estimate(self) -> LocationEstimate:
        if self.compressed:
            assert self.gaussian is not None
            return self.gaussian.estimate()
        assert self.particles is not None and self.log_weights is not None
        # Robust: ignores the thin uniform-over-shelves mixture component
        # that the object movement model injects into unobserved beliefs.
        return LocationEstimate.robust_from_particles(
            self.particles, self.log_weights
        )


def _object_log_likelihood(
    model: RFIDWorldModel,
    reader_positions: np.ndarray,
    cos_headings: np.ndarray,
    sin_headings: np.ndarray,
    particles: np.ndarray,
    parents: np.ndarray,
    is_read: bool,
) -> np.ndarray:
    """log p(Ô_i | R_parent, O_k) per object particle.

    Each particle is scored against *its own* reader hypothesis, which is
    what makes the representation factored rather than marginalized.  The
    headings' trig is precomputed once per epoch (this function runs for
    every active object every epoch).
    """
    ppos = reader_positions[parents]
    delta = particles - ppos
    planar = np.hypot(delta[:, 0], delta[:, 1])
    d = np.linalg.norm(delta, axis=1)
    safe = np.where(planar < 1e-12, 1.0, planar)
    cos_theta = (
        delta[:, 0] * cos_headings[parents] + delta[:, 1] * sin_headings[parents]
    ) / safe
    cos_theta = np.clip(cos_theta, -1.0, 1.0)
    theta = np.where(planar < 1e-12, 0.0, np.arccos(cos_theta))
    return model.sensor.log_likelihood(d, theta, is_read)


class FactoredParticleFilter:
    """Streaming inference engine over synchronized epochs.

    Parameters
    ----------
    model:
        The joint probabilistic model to invert.
    config:
        Particle counts, resampling thresholds, index/compression policies.
    initial_position / initial_heading:
        Prior reader pose.  ``initial_position=None`` defers to the first
        epoch's reported position (the usual case).
    """

    def __init__(
        self,
        model: RFIDWorldModel,
        config: InferenceConfig = InferenceConfig(),
        initial_position=None,
        initial_heading: float = 0.0,
        heading_spread: float = 0.05,
        position_spread: float = 0.1,
    ):
        self.model = model
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._initial_position = (
            None if initial_position is None else np.asarray(initial_position, dtype=float)
        )
        self._initial_heading = float(initial_heading)
        self._heading_spread = float(heading_spread)
        self._position_spread = float(position_spread)

        self._reader_positions: Optional[np.ndarray] = None  # (J, 3)
        self._reader_headings: Optional[np.ndarray] = None  # (J,)
        self._reader_log_w: Optional[np.ndarray] = None  # (J,)
        self._last_reported: Optional[np.ndarray] = None  # odometry anchor
        self._last_reported_epoch: int = -(10**9)

        self._beliefs: Dict[int, ObjectBelief] = {}
        self._selector = ActiveSetSelector(config.spatial_index)
        self._initializer = SensorBasedInitializer(config, model.shelves)
        # The Case-2 sensing region (Section IV-C) is sized to where the
        # sensor's read probability is non-negligible — NOT the (wider)
        # initialization cone: an oversized region makes past regions chain
        # into the current one and defeats the active-set restriction.
        self._sensing_range = max(
            0.5,
            min(
                config.init_cone_range_ft,
                model.sensor.effective_range(0.02) * 1.15,
            ),
        )
        self._epoch_index = -1
        #: Diagnostics: counters the benchmarks and tests read.
        self.stats: Dict[str, int] = {
            "epochs": 0,
            "reader_resamples": 0,
            "object_resamples": 0,
            "compressions": 0,
            "decompressions": 0,
            "objects_processed": 0,
            "objects_skipped": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch_index(self) -> int:
        return self._epoch_index

    def known_objects(self) -> List[int]:
        return sorted(self._beliefs)

    def belief(self, object_number: int) -> ObjectBelief:
        try:
            return self._beliefs[object_number]
        except KeyError:
            raise InferenceError(f"no belief for object {object_number}") from None

    def object_estimate(self, object_number: int) -> LocationEstimate:
        return self.belief(object_number).estimate()

    def reader_estimate(self) -> Tuple[np.ndarray, float]:
        """Posterior mean reader position and circular-mean heading."""
        if self._reader_positions is None:
            raise InferenceError("filter has not processed any epoch yet")
        assert self._reader_log_w is not None and self._reader_headings is not None
        p, _ = normalize_log_weights(self._reader_log_w)
        mean = p @ self._reader_positions
        heading = stratified_heading_mean(self._reader_headings, self._reader_log_w)
        return mean, heading

    def belief_memory_bytes(self) -> int:
        """Approximate bytes held by object beliefs (the Section V-D memory
        metric): 8 bytes per float plus 4 per parent pointer, 9 floats per
        compressed Gaussian (mean is 3 more)."""
        total = 0
        for belief in self._beliefs.values():
            if belief.compressed:
                total += (9 + 3) * 8
            else:
                k = belief.particle_count
                total += k * 3 * 8 + k * 4 + k * 8
        return total

    # ------------------------------------------------------------------
    # Main update
    # ------------------------------------------------------------------
    def step(self, epoch: Epoch) -> None:
        """Advance the filter by one synchronized epoch (Section IV-A Step 2)."""
        self._epoch_index += 1
        self.stats["epochs"] += 1
        reported = epoch.position_array

        if self._reader_positions is None:
            self._init_reader(reported, epoch.reported_heading)
        else:
            self._propagate_reader(epoch.reported_heading, reported)
        if reported is not None:
            self._last_reported = reported
            self._last_reported_epoch = self._epoch_index

        # --- reader weighting: p(R̂|R) * prod p(Ŝ|R,S)  (Eq. 5, w_rt) ----
        assert self._reader_positions is not None
        assert self._reader_headings is not None and self._reader_log_w is not None
        self._reader_log_w = self._reader_log_w + (
            self.model.reader_evidence_log_likelihood(
                self._reader_positions,
                self._reader_headings,
                reported,
                epoch.shelf_tags,
                negative_evidence_range=self.config.negative_evidence_range_ft,
            )
        )
        self._reader_log_w -= self._reader_log_w.max()

        anchor, heading = self.reader_estimate()
        sensing_cone = Cone.from_pose(
            anchor, heading, self.config.init_cone_half_angle_rad, self._sensing_range
        )
        current_box = self._selector.sensing_box(sensing_cone) if self._selector.enabled else None

        # --- active set (Cases 1 and 2) ----------------------------------
        read_now = {tag.number for tag in epoch.object_tags}
        active = self._selector.select(read_now, self._beliefs.keys(), current_box)
        self.stats["objects_processed"] += len(active)
        self.stats["objects_skipped"] += max(0, len(self._beliefs) - len(active))

        # --- (re)initialize / decompress read objects --------------------
        skip_weighting: Set[int] = set()
        for number in read_now:
            if number not in self._beliefs:
                self._create_belief(number, anchor, heading)
                skip_weighting.add(number)
                continue
            belief = self._beliefs[number]
            if belief.compressed:
                self._decompress(number)
                belief = self._beliefs[number]
            else:
                decision = self._redetection_decision(belief, anchor, heading)
                if decision is not ReinitDecision.KEEP:
                    assert belief.particles is not None
                    belief.particles = self._initializer.reinitialize(
                        belief.particles, decision, anchor, heading, self._rng
                    )
                    belief.log_weights = np.zeros(belief.particle_count)
                    belief.parents = self._random_parents(belief.particle_count)
                    belief.last_split_epoch = self._epoch_index
                    skip_weighting.add(number)
                    if decision is ReinitDecision.RESET:
                        self._selector.forget_object(number)
            belief.last_read_epoch = self._epoch_index
            belief.last_read_anchor = anchor.copy()

        # --- propagate + weight active objects (Eq. 5, w_ti) --------------
        feedback: Optional[np.ndarray] = None
        if self.config.reader_feedback:
            feedback = np.zeros(self._reader_positions.shape[0])
        cos_headings = np.cos(self._reader_headings)
        sin_headings = np.sin(self._reader_headings)
        for number in sorted(active):
            belief = self._beliefs.get(number)
            if belief is None or belief.compressed:
                continue  # compressed Case-2 objects stay compressed
            assert belief.particles is not None
            assert belief.parents is not None and belief.log_weights is not None
            belief.particles = self.model.objects.propagate(belief.particles, self._rng)
            if number in skip_weighting:
                continue
            inc = _object_log_likelihood(
                self.model,
                self._reader_positions,
                cos_headings,
                sin_headings,
                belief.particles,
                belief.parents,
                is_read=number in read_now,
            )
            belief.log_weights = belief.log_weights + inc
            belief.log_weights -= belief.log_weights.max()
            if feedback is not None:
                feedback += self._per_reader_feedback(belief.parents, inc)
            self._maybe_resample_object(belief)

        # --- record the sensing region (Fig 4b) ---------------------------
        if self._selector.enabled and current_box is not None:
            attached = []
            for number in active:
                belief = self._beliefs.get(number)
                if belief is None or belief.particles is None:
                    continue
                inside = current_box.contains_points(belief.particles)
                if not inside.any():
                    continue
                assert belief.log_weights is not None
                p, _ = normalize_log_weights(belief.log_weights)
                # Attach by weight mass: stray teleported particles must not
                # pin an object to every region (see ActiveSetSelector).
                if float(p[inside].sum()) >= 0.005:
                    attached.append(number)
            self._selector.record_region(current_box, attached)

        # --- reader resampling --------------------------------------------
        self._maybe_resample_reader(feedback)

        # --- compression policy -------------------------------------------
        if self.config.compression.enabled:
            self._compression_pass()

    def process_trace(self, epochs: Iterable[Epoch]) -> None:
        for epoch in epochs:
            self.step(epoch)

    # ------------------------------------------------------------------
    # Reader particle helpers
    # ------------------------------------------------------------------
    def _init_reader(
        self, reported: Optional[np.ndarray], reported_heading: Optional[float]
    ) -> None:
        start = reported if reported is not None else self._initial_position
        if start is None:
            raise InferenceError(
                "first epoch has no reported position and no initial_position "
                "was given"
            )
        j = self.config.reader_particles
        spread = self._position_spread
        self._reader_positions = start[None, :] + self._rng.normal(
            0.0, spread, size=(j, 3)
        ) * np.array([1.0, 1.0, 0.0])
        heading = (
            reported_heading if reported_heading is not None else self._initial_heading
        )
        self._reader_headings = heading + self._rng.normal(
            0.0, self._heading_spread, size=j
        )
        self._reader_log_w = np.zeros(j)

    def _propagate_reader(
        self, reported_heading: Optional[float], reported: Optional[np.ndarray]
    ) -> None:
        assert self._reader_positions is not None and self._reader_headings is not None
        velocity_override = None
        if (
            self.config.use_odometry_control
            and reported is not None
            and self._last_reported is not None
            # Only a consecutive report is a per-epoch velocity; a delta that
            # spans a positioning dropout would be applied as one huge step.
            and self._last_reported_epoch == self._epoch_index - 1
        ):
            velocity_override = reported - self._last_reported
        self._reader_positions, self._reader_headings = self.model.motion.propagate(
            self._reader_positions,
            self._reader_headings,
            self._rng,
            velocity_override=velocity_override,
        )
        if reported_heading is not None:
            # Dead-reckoning robots report their commanded orientation; treat
            # it as a control input and propose headings around it.
            j = self._reader_headings.shape[0]
            sigma = max(self.model.motion.params.heading_sigma, self._heading_spread)
            self._reader_headings = reported_heading + self._rng.normal(
                0.0, sigma, size=j
            )

    def _per_reader_feedback(self, parents: np.ndarray, inc: np.ndarray) -> np.ndarray:
        """log mean-likelihood of this object's particles per reader.

        Readers with no attached particles receive the object's overall mean
        (neutral), so absence of pointers neither punishes nor rewards.
        """
        assert self._reader_positions is not None
        j = self._reader_positions.shape[0]
        lik = np.exp(np.clip(inc, -60.0, 0.0))
        sums = np.bincount(parents, weights=lik, minlength=j)
        counts = np.bincount(parents, minlength=j)
        overall = lik.mean()
        means = np.where(counts > 0, sums / np.maximum(counts, 1), overall)
        return np.log(np.maximum(means, 1e-300))

    def _maybe_resample_reader(self, feedback: Optional[np.ndarray]) -> None:
        assert self._reader_log_w is not None
        j = self._reader_log_w.size
        if effective_sample_size(self._reader_log_w) >= self.config.ess_threshold * j:
            return
        self.stats["reader_resamples"] += 1
        selection_log_w = self._reader_log_w
        if feedback is not None:
            selection_log_w = selection_log_w + feedback
        chosen = resample_log_weights(selection_log_w, j, self._rng)
        assert self._reader_positions is not None and self._reader_headings is not None
        self._reader_positions = self._reader_positions[chosen]
        self._reader_headings = self._reader_headings[chosen]
        self._reader_log_w = np.zeros(j)
        # Remap parent pointers through the ancestor map.  All copies of a
        # surviving old reader are identical, so pointing at the last copy is
        # exact; dropped parents re-point to a random survivor.
        old_to_new = np.full(j, -1, dtype=np.int64)
        old_to_new[chosen] = np.arange(j)
        for belief in self._beliefs.values():
            if belief.parents is None:
                continue
            remapped = old_to_new[belief.parents]
            dropped = remapped < 0
            if dropped.any():
                remapped[dropped] = self._rng.integers(0, j, size=int(dropped.sum()))
            belief.parents = remapped

    # ------------------------------------------------------------------
    # Object belief helpers
    # ------------------------------------------------------------------
    def _random_parents(self, k: int) -> np.ndarray:
        assert self._reader_positions is not None
        return self._rng.integers(
            0, self._reader_positions.shape[0], size=k
        ).astype(np.int64)

    def _redetection_decision(
        self, belief: ObjectBelief, anchor: np.ndarray, heading: float
    ) -> ReinitDecision:
        """Section IV-A re-detection subtlety, two triggers:

        * distance between the current reader and the belief mean (could the
          reader plausibly be reading the object where we think it is?), and
        * a *surprise* trigger — the read's probability under the belief is
          near zero, so the object very likely moved even though the reader
          is within the KEEP zone.

        SPLITs are rate-limited by ``split_cooldown_epochs``.
        """
        config = self.config
        # Plain weighted mean: cheaper than the robust estimate and accurate
        # enough for a threshold decision (this runs for every read object
        # every epoch).
        assert belief.particles is not None and belief.log_weights is not None
        p, _ = normalize_log_weights(belief.log_weights)
        belief_mean = p @ belief.particles
        moved = float(
            np.hypot(anchor[0] - belief_mean[0], anchor[1] - belief_mean[1])
        )
        decision = classify_redetection(moved, config)
        if decision is ReinitDecision.KEEP:
            p_read = float(
                self.model.sensor.read_probability_at(
                    anchor, heading, belief_mean[None, :]
                )[0]
            )
            if p_read < config.surprise_read_threshold:
                decision = ReinitDecision.SPLIT
        if decision is ReinitDecision.SPLIT:
            since_split = self._epoch_index - belief.last_split_epoch
            if since_split < config.split_cooldown_epochs:
                decision = ReinitDecision.KEEP
        return decision

    def _create_belief(self, number: int, anchor: np.ndarray, heading: float) -> None:
        k = self.config.object_particles
        particles = self._initializer.sample(anchor, heading, k, self._rng)
        self._beliefs[number] = ObjectBelief(
            particles=particles,
            parents=self._random_parents(k),
            log_weights=np.zeros(k),
            gaussian=None,
            created_epoch=self._epoch_index,
            last_read_epoch=self._epoch_index,
            last_read_anchor=anchor.copy(),
        )

    def _maybe_resample_object(self, belief: ObjectBelief) -> None:
        assert belief.log_weights is not None
        k = belief.log_weights.size
        if effective_sample_size(belief.log_weights) >= self.config.ess_threshold * k:
            return
        self.stats["object_resamples"] += 1
        p, _ = normalize_log_weights(belief.log_weights)
        idx = systematic_resample(p, k, self._rng)
        assert belief.particles is not None and belief.parents is not None
        belief.particles = belief.particles[idx]
        belief.parents = belief.parents[idx]
        belief.log_weights = np.zeros(k)

    def _decompress(self, number: int) -> None:
        belief = self._beliefs[number]
        assert belief.gaussian is not None
        k = self.config.compression.decompressed_particles
        belief.particles = belief.gaussian.sample(self._rng, k)
        belief.parents = self._random_parents(k)
        belief.log_weights = np.zeros(k)
        belief.gaussian = None
        self.stats["decompressions"] += 1

    def _compression_pass(self) -> None:
        config = self.config.compression
        candidates = []
        for number, belief in self._beliefs.items():
            if belief.compressed or belief.particles is None:
                continue
            unread = self._epoch_index - belief.last_read_epoch
            if unread < config.unread_epochs:
                continue
            error = 0.0
            if config.kl_threshold is not None:
                assert belief.log_weights is not None
                error = compression_error(belief.particles, belief.log_weights)
            candidates.append(
                CompressionCandidate(
                    object_id=number,
                    epochs_unread=unread,
                    particle_count=belief.particle_count,
                    error=error,
                )
            )
        for number in select_for_compression(candidates, config):
            belief = self._beliefs[number]
            assert belief.particles is not None and belief.log_weights is not None
            # Moment-match the robust (dominant-mode) estimate rather than
            # the raw cloud: by compression time the cloud already carries a
            # thin teleported-uniform component that would bias the Gaussian.
            estimate = LocationEstimate.robust_from_particles(
                belief.particles, belief.log_weights
            )
            belief.gaussian = GaussianBelief(
                mean=estimate.mean, covariance=estimate.covariance
            )
            belief.particles = None
            belief.parents = None
            belief.log_weights = None
            self.stats["compressions"] += 1
