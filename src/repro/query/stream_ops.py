"""Relation-to-stream operators: Istream, Rstream, Dstream (CQL).

* ``Istream`` emits tuples that *entered* the relation since the previous
  tick — this is what makes the location-update query report only changes;
* ``Rstream`` emits the whole relation every tick;
* ``Dstream`` emits tuples that *left* the relation.

Differencing is by tuple value with multiplicity (a bag difference), ignoring
timestamps: the location-update query must treat "same tag, same location,
newer timestamp" as unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from .tuples import StreamTuple


def _value_key(t: StreamTuple) -> Tuple:
    """Timestamp-free value identity used for relation differencing."""
    return tuple(sorted(t.items()))


class StreamOp:
    """Interface: turn the tick's relation into an output batch."""

    def process(self, time: float, relation: Sequence[StreamTuple]) -> List[StreamTuple]:
        raise NotImplementedError


class Rstream(StreamOp):
    """Emit the full relation at every tick."""

    def process(self, time: float, relation: Sequence[StreamTuple]) -> List[StreamTuple]:
        return [t.extended(time=time) for t in relation]


class Istream(StreamOp):
    """Emit tuples added to the relation since the previous tick."""

    def __init__(self) -> None:
        self._previous: Counter = Counter()

    def process(self, time: float, relation: Sequence[StreamTuple]) -> List[StreamTuple]:
        current = Counter(_value_key(t) for t in relation)
        added = current - self._previous
        self._previous = current
        out: List[StreamTuple] = []
        remaining = dict(added)
        for t in relation:
            key = _value_key(t)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                out.append(t.extended(time=time))
        return out


class Dstream(StreamOp):
    """Emit tuples removed from the relation since the previous tick."""

    def __init__(self) -> None:
        self._previous: Counter = Counter()
        self._previous_tuples: List[StreamTuple] = []

    def process(self, time: float, relation: Sequence[StreamTuple]) -> List[StreamTuple]:
        current = Counter(_value_key(t) for t in relation)
        removed = self._previous - current
        out: List[StreamTuple] = []
        remaining = dict(removed)
        for t in self._previous_tuples:
            key = _value_key(t)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                out.append(t.extended(time=time))
        self._previous = current
        self._previous_tuples = list(relation)
        return out
