"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "simulate",
            "--objects",
            "6",
            "--shelf-tags",
            "3",
            "--seed",
            "11",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestSimulate:
    def test_writes_trace(self, trace_path, capsys):
        assert trace_path.exists()
        text = trace_path.read_text()
        assert '"type": "header"' in text
        assert '"type": "truth"' in text

    def test_roundtrips(self, trace_path):
        from repro.streams import Trace

        with open(trace_path) as fp:
            trace = Trace.load(fp)
        assert trace.truth is not None
        assert len(trace.truth.initial_positions) == 6


class TestClean:
    def test_prints_events(self, trace_path, capsys):
        code = main(["clean", str(trace_path), "--particles", "150", "--delay", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "object:" in out

    def test_writes_csv(self, trace_path, tmp_path, capsys):
        events = tmp_path / "events.csv"
        code = main(
            [
                "clean",
                str(trace_path),
                "--events",
                str(events),
                "--particles",
                "150",
                "--index",
            ]
        )
        assert code == 0
        lines = events.read_text().strip().splitlines()
        assert lines[0].startswith("time,tag")
        assert len(lines) >= 7  # header + one event per object


class TestExecutorFlag:
    def _clean(self, trace_path, csv_path, *extra):
        return main(
            [
                "clean",
                str(trace_path),
                "--events",
                str(csv_path),
                "--particles",
                "150",
                "--delay",
                "20",
                "--shards",
                "2",
                *extra,
            ]
        )

    def test_process_executor_output_matches_serial(self, trace_path, tmp_path, capsys):
        serial = tmp_path / "serial.csv"
        process = tmp_path / "process.csv"
        assert self._clean(trace_path, serial, "--executor", "serial") == 0
        assert self._clean(trace_path, process, "--executor", "process") == 0
        assert process.read_text() == serial.read_text()

    def test_invalid_executor_name_exits_2(self, trace_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["clean", str(trace_path), "--executor", "fiber"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_invalid_executor_on_query_exits_2(self, trace_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", str(trace_path), "--executor", "green-thread"])
        assert excinfo.value.code == 2
        assert "usage" in capsys.readouterr().err

    def test_bare_threads_flag_is_deprecated_alias(self, trace_path, tmp_path, capsys):
        events = tmp_path / "events.csv"
        assert self._clean(trace_path, events, "--threads") == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--executor thread" in captured.err

    def test_executor_flag_silences_threads_deprecation(
        self, trace_path, tmp_path, capsys
    ):
        events = tmp_path / "events.csv"
        assert self._clean(trace_path, events, "--executor", "thread") == 0
        assert "deprecated" not in capsys.readouterr().err


class TestEvaluate:
    def test_scores_three_systems(self, trace_path, capsys):
        code = main(["evaluate", str(trace_path), "--particles", "150"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("factored", "smurf", "uniform"):
            assert name in out
        assert "XY (ft)" in out


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_command_exits_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err and "invalid choice" in err

    def test_unknown_option_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--bogus-flag"])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_version_exits_0_and_prints(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCheckpointRestore:
    CLEAN_OPTS = ["--particles", "150", "--delay", "20", "--shards", "2"]

    def test_checkpoint_then_restore_matches_full_run(
        self, trace_path, tmp_path, capsys
    ):
        """The kill-and-resume drill through the CLI: prefix events plus
        resumed events must equal the uninterrupted run byte for byte."""
        full = tmp_path / "full.csv"
        assert main(
            ["clean", str(trace_path), "--events", str(full)] + self.CLEAN_OPTS
        ) == 0
        ck = tmp_path / "ck"
        prefix = tmp_path / "prefix.csv"
        assert main(
            [
                "checkpoint",
                str(trace_path),
                "--epochs",
                "20",
                "--out",
                str(ck),
                "--events",
                str(prefix),
            ]
            + self.CLEAN_OPTS
        ) == 0
        assert (ck / "manifest.json").exists()
        out = capsys.readouterr().out
        assert "checkpointed 20/" in out
        suffix = tmp_path / "suffix.csv"
        assert main(
            ["restore", str(ck), str(trace_path), "--events", str(suffix)]
        ) == 0
        full_rows = full.read_text().splitlines()
        resumed_rows = (
            prefix.read_text().splitlines()
            + suffix.read_text().splitlines()[1:]  # drop duplicate header
        )
        assert resumed_rows == full_rows

    def test_restore_resharded(self, trace_path, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(
            ["checkpoint", str(trace_path), "--epochs", "20", "--out", str(ck)]
            + self.CLEAN_OPTS
        ) == 0
        capsys.readouterr()
        assert main(["restore", str(ck), str(trace_path), "--shards", "1"]) == 0
        # Without --events the resumed events print to stdout.
        assert "object:" in capsys.readouterr().out

    def test_clean_periodic_checkpoint_and_resume(self, trace_path, tmp_path, capsys):
        directory = tmp_path / "periodic"
        assert main(
            [
                "clean",
                str(trace_path),
                "--checkpoint-every",
                "10",
                "--checkpoint-dir",
                str(directory),
            ]
            + self.CLEAN_OPTS
        ) == 0
        assert (directory / "LATEST").exists()
        capsys.readouterr()
        events = tmp_path / "resumed.csv"
        assert main(
            [
                "clean",
                str(trace_path),
                "--resume",
                str(directory),
                "--events",
                str(events),
            ]
        ) == 0
        assert "resumed from epoch" in capsys.readouterr().out
        assert events.read_text().startswith("time,tag")

    def test_clean_periodic_delta_checkpoints_and_resume(
        self, trace_path, tmp_path, capsys
    ):
        """``--checkpoint-mode delta`` writes a chain (full rebase + delta
        links) that ``--resume`` transparently materializes."""
        import json
        import os

        directory = tmp_path / "periodic"
        assert main(
            [
                "clean",
                str(trace_path),
                "--checkpoint-every",
                "8",
                "--checkpoint-dir",
                str(directory),
                "--checkpoint-mode",
                "delta",
                "--checkpoint-full-every",
                "3",
            ]
            + self.CLEAN_OPTS
        ) == 0
        kinds = [
            json.loads((directory / name / "manifest.json").read_text())["kind"]
            for name in sorted(os.listdir(directory))
            if name.startswith("epoch_")
        ]
        assert "delta" in kinds and "full" in kinds
        capsys.readouterr()
        events = tmp_path / "resumed.csv"
        assert main(
            [
                "clean",
                str(trace_path),
                "--resume",
                str(directory),
                "--events",
                str(events),
            ]
        ) == 0
        assert "resumed from epoch" in capsys.readouterr().out
        assert events.read_text().startswith("time,tag")

    def test_clean_checkpoint_every_requires_dir(self, trace_path):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(["clean", str(trace_path), "--checkpoint-every", "10"])

    def test_checkpoint_epochs_out_of_range(self, trace_path, tmp_path):
        with pytest.raises(SystemExit, match="--epochs"):
            main(
                [
                    "checkpoint",
                    str(trace_path),
                    "--epochs",
                    "100000",
                    "--out",
                    str(tmp_path / "ck"),
                ]
            )

    def test_restore_from_non_checkpoint_fails(self, trace_path, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["restore", str(tmp_path), str(trace_path)])

    def test_checkpoint_refuses_existing_target_upfront(self, trace_path, tmp_path):
        target = tmp_path / "ck"
        target.mkdir()
        # Must fail before any epochs are processed, not after the run.
        with pytest.raises(SystemExit, match="already exists"):
            main(
                [
                    "checkpoint",
                    str(trace_path),
                    "--epochs",
                    "5",
                    "--out",
                    str(target),
                ]
            )


class TestQueryServing:
    """The multiplexed standing-query path through the CLI: fan-out,
    emission dumps, mid-stream operator checkpoints, and exact resume."""

    QUERY_OPTS = [
        "--particles", "150", "--delay", "20", "--shards", "2",
        "--standing-queries", "16",
    ]

    @staticmethod
    def _emissions_by_query(path):
        import json

        grouped = {}
        for line in path.read_text().splitlines():
            record = json.loads(line)
            grouped.setdefault(record["query"], []).append(
                (record["time"], tuple(sorted(record["row"].items())))
            )
        return grouped

    def test_standing_queries_and_emissions(self, trace_path, tmp_path, capsys):
        emissions = tmp_path / "emissions.jsonl"
        assert main(
            ["query", str(trace_path), "--emissions", str(emissions)]
            + self.QUERY_OPTS
        ) == 0
        out = capsys.readouterr().out
        assert "standing queries: 16 registered" in out
        assert "multiplexer: 18 queries" in out
        assert "cache:" in out and "serve:" in out
        grouped = self._emissions_by_query(emissions)
        assert "location_updates" in grouped
        assert any(name.startswith("region_") for name in grouped)

    def test_queries_file_registers_spec(self, trace_path, tmp_path, capsys):
        import json

        spec = tmp_path / "queries.json"
        spec.write_text(json.dumps([
            {"kind": "region", "name": "dock", "lo": [0, 0], "hi": [60, 40]},
            {"kind": "location_updates", "name": "all_moves"},
        ]))
        emissions = tmp_path / "emissions.jsonl"
        assert main(
            [
                "query", str(trace_path),
                "--queries-file", str(spec),
                "--emissions", str(emissions),
                "--particles", "150", "--delay", "20",
            ]
        ) == 0
        assert "standing queries: 2 registered" in capsys.readouterr().out
        grouped = self._emissions_by_query(emissions)
        assert "dock" in grouped and "all_moves" in grouped
        # A duplicate of the built-in location-update plan answers from the
        # shared operator: identical rows under both names.
        assert grouped["all_moves"] == grouped["location_updates"]

    def test_checkpoint_at_then_resume_matches_full_run(
        self, trace_path, tmp_path, capsys
    ):
        """Kill-and-resume for query serving: per query, prefix emissions
        plus resumed emissions equal the uninterrupted run's exactly."""
        full = tmp_path / "full.jsonl"
        assert main(
            ["query", str(trace_path), "--emissions", str(full)]
            + self.QUERY_OPTS
        ) == 0
        ck = tmp_path / "ck"
        prefix = tmp_path / "prefix.jsonl"
        assert main(
            [
                "query", str(trace_path),
                "--checkpoint-at", "20",
                "--checkpoint-out", str(ck),
                "--emissions", str(prefix),
            ]
            + self.QUERY_OPTS
        ) == 0
        assert (ck / "LATEST").exists()
        assert "checkpointed at epoch 20" in capsys.readouterr().out
        resumed = tmp_path / "resumed.jsonl"
        assert main(
            [
                "query", str(trace_path),
                "--resume", str(ck),
                "--emissions", str(resumed),
            ]
            + self.QUERY_OPTS
        ) == 0
        assert "resumed from epoch 20" in capsys.readouterr().out
        full_q = self._emissions_by_query(full)
        prefix_q = self._emissions_by_query(prefix)
        resumed_q = self._emissions_by_query(resumed)
        assert set(full_q) == set(prefix_q) | set(resumed_q)
        for name in full_q:
            assert prefix_q.get(name, []) + resumed_q.get(name, []) == full_q[name]

    def test_checkpoint_at_requires_out(self, trace_path):
        with pytest.raises(SystemExit, match="checkpoint-out"):
            main(["query", str(trace_path), "--checkpoint-at", "10"])

    def test_checkpoint_at_excludes_resume(self, trace_path, tmp_path):
        with pytest.raises(SystemExit, match="exclusive"):
            main(
                [
                    "query", str(trace_path),
                    "--checkpoint-at", "10",
                    "--checkpoint-out", str(tmp_path / "ck"),
                    "--resume", str(tmp_path / "other"),
                ]
            )

    def test_checkpoint_at_out_of_range(self, trace_path, tmp_path):
        with pytest.raises(SystemExit, match="must be in"):
            main(
                [
                    "query", str(trace_path),
                    "--checkpoint-at", "100000",
                    "--checkpoint-out", str(tmp_path / "ck"),
                ]
            )
