"""The probabilistic data-generation model of Section III.

Component models (sensor, reader motion, reader location sensing, object
dynamics) plus the joint dynamic Bayesian network that combines them, and
the sensor-model-based particle initializer.
"""

from .joint import RFIDWorldModel
from .motion import MotionParams, ReaderMotionModel
from .objects import ObjectDynamicsParams, ObjectLocationModel
from .priors import (
    ReinitDecision,
    SensorBasedInitializer,
    classify_redetection,
    config_for_sensor,
    initialization_geometry,
)
from .sensing import LocationSensingModel, SensingNoiseParams
from .sensor import (
    DEFAULT_SENSOR_PARAMS,
    SensorModel,
    SensorParams,
    features,
    field_correlation,
    log_sigmoid,
    sigmoid,
)

__all__ = [
    "DEFAULT_SENSOR_PARAMS",
    "LocationSensingModel",
    "MotionParams",
    "ObjectDynamicsParams",
    "ObjectLocationModel",
    "RFIDWorldModel",
    "ReaderMotionModel",
    "ReinitDecision",
    "SensorBasedInitializer",
    "SensingNoiseParams",
    "SensorModel",
    "SensorParams",
    "classify_redetection",
    "config_for_sensor",
    "initialization_geometry",
    "features",
    "field_correlation",
    "log_sigmoid",
    "sigmoid",
]
