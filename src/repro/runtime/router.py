"""Epoch routing: split each synchronized epoch across filter shards.

A shard owns a subset of the object-tag population but still needs the full
epoch *context* to run correct inference: the reader's reported position and
heading drive the reader particle filter, and the shelf-tag reads anchor it
(Section III's shelf-tag evidence).  So the router sends every shard one
epoch per input epoch — same time, same reported pose, same shelf tags —
with only the object-tag reads filtered down to the tags that shard owns.

Empty per-shard read sets are *not* skipped: an epoch with no reads still
propagates the reader belief, applies negative evidence to in-range objects,
and advances the output policy's clock, exactly as in the unsharded
pipeline.  Skipping them would desynchronize shard clocks and break parity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..streams.records import Epoch
from .partition import make_partitioner


class EpochRouter:
    """Splits epochs by tag ownership, broadcasting reader/shelf context."""

    def __init__(self, n_shards: int, partitioner: str = "hash"):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.partitioner = partitioner
        self._partition = make_partitioner(partitioner, n_shards)

    def shard_of(self, number: int) -> int:
        """The shard that owns object tag ``number``."""
        return self._partition(number)

    def split(self, epoch: Epoch) -> List[Epoch]:
        """One epoch per shard: owned object tags + broadcast context."""
        if self.n_shards == 1:
            return [epoch]
        buckets: List[List] = [[] for _ in range(self.n_shards)]
        for tag in epoch.object_tags:
            buckets[self._partition(tag.number)].append(tag)
        return [
            replace(epoch, object_tags=frozenset(bucket)) for bucket in buckets
        ]

    def split_numbers(self, epoch: Epoch) -> List[List[int]]:
        """Per-shard owned object-tag *numbers* — the wire form of
        :meth:`split` for the process executor, which ships routed reads as
        plain ints over a pipe instead of pickling per-shard epochs.  Each
        worker rebuilds its sub-epoch from these plus the broadcast context;
        the reconstructed content is identical to :meth:`split`'s (tag sets
        are unordered), so executor parity is unaffected.
        """
        buckets: List[List[int]] = [[] for _ in range(self.n_shards)]
        if self.n_shards == 1:
            buckets[0] = [tag.number for tag in epoch.object_tags]
            return buckets
        for tag in epoch.object_tags:
            buckets[self._partition(tag.number)].append(tag.number)
        return buckets
