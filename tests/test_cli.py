"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "simulate",
            "--objects",
            "6",
            "--shelf-tags",
            "3",
            "--seed",
            "11",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestSimulate:
    def test_writes_trace(self, trace_path, capsys):
        assert trace_path.exists()
        text = trace_path.read_text()
        assert '"type": "header"' in text
        assert '"type": "truth"' in text

    def test_roundtrips(self, trace_path):
        from repro.streams import Trace

        with open(trace_path) as fp:
            trace = Trace.load(fp)
        assert trace.truth is not None
        assert len(trace.truth.initial_positions) == 6


class TestClean:
    def test_prints_events(self, trace_path, capsys):
        code = main(["clean", str(trace_path), "--particles", "150", "--delay", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "object:" in out

    def test_writes_csv(self, trace_path, tmp_path, capsys):
        events = tmp_path / "events.csv"
        code = main(
            [
                "clean",
                str(trace_path),
                "--events",
                str(events),
                "--particles",
                "150",
                "--index",
            ]
        )
        assert code == 0
        lines = events.read_text().strip().splitlines()
        assert lines[0].startswith("time,tag")
        assert len(lines) >= 7  # header + one event per object


class TestEvaluate:
    def test_scores_three_systems(self, trace_path, capsys):
        code = main(["evaluate", str(trace_path), "--particles", "150"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("factored", "smurf", "uniform"):
            assert name in out
        assert "XY (ft)" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
