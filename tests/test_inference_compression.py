"""Tests for belief compression (Section IV-D)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CompressionConfig
from repro.errors import InferenceError
from repro.inference.compression import (
    CompressionCandidate,
    GaussianBelief,
    compress,
    compression_error,
    select_for_compression,
)


class TestGaussianBelief:
    def test_validates_shapes(self):
        with pytest.raises(InferenceError):
            GaussianBelief(np.zeros(2), np.eye(3))

    def test_sample_moments(self, rng):
        mean = np.array([1.0, 2.0, 0.0])
        cov = np.diag([0.04, 0.09, 0.0])
        belief = GaussianBelief(mean, cov)
        pts = belief.sample(rng, 20000)
        assert pts.mean(axis=0) == pytest.approx(mean, abs=0.01)
        assert pts[:, 0].std() == pytest.approx(0.2, rel=0.05)
        assert pts[:, 1].std() == pytest.approx(0.3, rel=0.05)
        assert pts[:, 2].std() == pytest.approx(0.0, abs=1e-3)

    def test_sample_degenerate_covariance(self, rng):
        belief = GaussianBelief(np.zeros(3), np.zeros((3, 3)))
        pts = belief.sample(rng, 10)
        assert np.abs(pts).max() < 1e-3

    def test_sample_validates_n(self, rng):
        belief = GaussianBelief(np.zeros(3), np.eye(3))
        with pytest.raises(InferenceError):
            belief.sample(rng, 0)


class TestCompress:
    def test_moment_matching(self, rng):
        pts = rng.normal(loc=[2, 3, 0], scale=[0.5, 0.2, 0], size=(5000, 3))
        belief = compress(pts, np.zeros(5000))
        assert belief.mean == pytest.approx([2, 3, 0], abs=0.03)
        assert belief.covariance[0, 0] == pytest.approx(0.25, rel=0.1)

    def test_compression_error_is_trace(self, rng):
        pts = rng.normal(size=(1000, 3))
        lw = rng.normal(size=1000)
        err = compression_error(pts, lw)
        belief = compress(pts, lw)
        assert err == pytest.approx(float(np.trace(belief.covariance)))

    def test_roundtrip_compress_decompress(self, rng):
        pts = rng.normal(loc=[1, 1, 0], scale=0.1, size=(2000, 3))
        pts[:, 2] = 0.0
        belief = compress(pts, np.zeros(2000))
        resampled = belief.sample(rng, 2000)
        recompressed = compress(resampled, np.zeros(2000))
        assert recompressed.mean == pytest.approx(belief.mean, abs=0.02)
        assert np.trace(recompressed.covariance) == pytest.approx(
            np.trace(belief.covariance), rel=0.2
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_error_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(50, 3))
        lw = rng.normal(size=50)
        assert compression_error(pts, lw) >= 0.0


class TestPolicy:
    def make_candidate(self, object_id, unread, error=0.1, count=100):
        return CompressionCandidate(object_id, unread, count, error)

    def test_unread_policy(self):
        config = CompressionConfig(enabled=True, unread_epochs=5)
        candidates = [
            self.make_candidate(1, 10),
            self.make_candidate(2, 3),
            self.make_candidate(3, 5),
        ]
        assert select_for_compression(candidates, config) == [1, 3]

    def test_min_particles_guard(self):
        config = CompressionConfig(enabled=True, unread_epochs=1, min_particles_to_compress=50)
        candidates = [self.make_candidate(1, 10, count=10)]
        assert select_for_compression(candidates, config) == []

    def test_kl_policy_ranks_and_thresholds(self):
        config = CompressionConfig(enabled=True, unread_epochs=1, kl_threshold=0.5)
        candidates = [
            self.make_candidate(1, 5, error=0.9),
            self.make_candidate(2, 5, error=0.1),
            self.make_candidate(3, 5, error=0.3),
        ]
        assert select_for_compression(candidates, config) == [2, 3]

    def test_config_validation(self):
        with pytest.raises(Exception):
            CompressionConfig(unread_epochs=0)
        with pytest.raises(Exception):
            CompressionConfig(decompressed_particles=1)
        with pytest.raises(Exception):
            CompressionConfig(kl_threshold=-1.0)
