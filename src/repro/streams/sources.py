"""Stream sources: traces, ground truth, and persistence.

A *trace* is the library's at-rest representation of one run: the two raw
streams (Section II-A) plus, for simulated data, the ground truth needed for
evaluation.  Traces round-trip through a line-oriented JSON format so that
experiments can be saved, inspected and replayed.

Ground truth stores object locations compactly: objects are overwhelmingly
stationary (the paper's object model moves with small probability alpha), so
we keep initial positions plus a sparse list of move records instead of a
dense per-epoch path — at 20,000 objects and tens of thousands of epochs a
dense representation would dwarf the simulation itself.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

import numpy as np

from ..errors import StreamError
from .records import (
    Epoch,
    ReaderLocationReport,
    TagId,
    TagReading,
)
from .synchronize import synchronize


@dataclass(frozen=True)
class ObjectMove:
    """A ground-truth relocation: object ``number`` sits at ``position``
    from ``epoch_index`` onward."""

    epoch_index: int
    number: int
    position: Tuple[float, float, float]


@dataclass
class GroundTruth:
    """Ground truth attached to a simulated trace."""

    initial_positions: Dict[int, np.ndarray]
    reader_path: np.ndarray  # (T, 3) true reader positions
    reader_headings: np.ndarray  # (T,)
    moves: List[ObjectMove] = field(default_factory=list)
    shelf_tag_positions: Dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.initial_positions = {
            int(k): np.asarray(v, dtype=float) for k, v in self.initial_positions.items()
        }
        self.shelf_tag_positions = {
            int(k): np.asarray(v, dtype=float)
            for k, v in self.shelf_tag_positions.items()
        }
        self.moves = sorted(self.moves, key=lambda m: m.epoch_index)

    @property
    def n_epochs(self) -> int:
        return int(self.reader_path.shape[0])

    def object_numbers(self) -> List[int]:
        return sorted(self.initial_positions)

    def object_location_at(self, number: int, epoch_index: int) -> np.ndarray:
        """True location of an object at an epoch (last move wins)."""
        if number not in self.initial_positions:
            raise StreamError(f"unknown object {number}")
        position = self.initial_positions[number]
        for move in self.moves:
            if move.number != number:
                continue
            if move.epoch_index > epoch_index:
                break
            position = np.asarray(move.position, dtype=float)
        return position

    def locations_at(self, epoch_index: int) -> Dict[int, np.ndarray]:
        """All true object locations at an epoch."""
        out = {k: v for k, v in self.initial_positions.items()}
        for move in self.moves:
            if move.epoch_index > epoch_index:
                break
            out[move.number] = np.asarray(move.position, dtype=float)
        return out

    def final_object_locations(self) -> Dict[int, np.ndarray]:
        return self.locations_at(self.n_epochs)


@dataclass
class Trace:
    """One recorded run: raw streams, optional truth, and metadata."""

    readings: List[TagReading]
    reports: List[ReaderLocationReport]
    epoch_length: float = 1.0
    truth: Optional[GroundTruth] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def epochs(self, emit_empty: bool = True, start: int = 0) -> List[Epoch]:
        """Synchronize the raw streams into epochs (Section II-A).

        ``start`` seeks past the first ``start`` epochs — the resume path:
        a checkpoint records how many epochs the runtime consumed
        (``epochs_processed``), and restoring feeds
        ``trace.epochs(start=offset)`` so the stream picks up exactly where
        the snapshot was cut.  Synchronization always runs over the full
        raw streams first, so the epoch grid (and therefore every epoch's
        timestamp and contents) is identical to the uninterrupted run's.
        """
        if start < 0:
            raise StreamError(f"epoch seek offset must be >= 0, got {start}")
        epochs = synchronize(
            self.readings,
            self.reports,
            epoch_length=self.epoch_length,
            emit_empty=emit_empty,
        )
        return epochs[start:] if start else epochs

    @property
    def duration(self) -> float:
        times = [r.time for r in self.readings] + [r.time for r in self.reports]
        if not times:
            return 0.0
        return max(times) - min(times)

    @property
    def n_readings(self) -> int:
        return len(self.readings)

    def object_tag_numbers(self) -> List[int]:
        return sorted({r.tag.number for r in self.readings if r.tag.is_object})

    def shelf_tag_numbers(self) -> List[int]:
        return sorted({r.tag.number for r in self.readings if r.tag.is_shelf})

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def dump(self, fp: TextIO) -> None:
        """Write the trace as line-delimited JSON records."""
        header = {
            "type": "header",
            "epoch_length": self.epoch_length,
            "metadata": self.metadata,
        }
        fp.write(json.dumps(header) + "\n")
        for reading in self.readings:
            fp.write(
                json.dumps(
                    {"type": "reading", "time": reading.time, "tag": str(reading.tag)}
                )
                + "\n"
            )
        for report in self.reports:
            record = {
                "type": "report",
                "time": report.time,
                "position": list(report.position),
            }
            if report.heading is not None:
                record["heading"] = report.heading
            fp.write(json.dumps(record) + "\n")
        if self.truth is not None:
            truth = {
                "type": "truth",
                "initial_positions": {
                    str(k): v.tolist()
                    for k, v in self.truth.initial_positions.items()
                },
                "moves": [
                    [m.epoch_index, m.number, list(m.position)]
                    for m in self.truth.moves
                ],
                "reader_path": self.truth.reader_path.tolist(),
                "reader_headings": self.truth.reader_headings.tolist(),
                "shelf_tag_positions": {
                    str(k): v.tolist()
                    for k, v in self.truth.shelf_tag_positions.items()
                },
            }
            fp.write(json.dumps(truth) + "\n")

    def dumps(self) -> str:
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @staticmethod
    def load(fp: TextIO) -> "Trace":
        readings: List[TagReading] = []
        reports: List[ReaderLocationReport] = []
        epoch_length = 1.0
        metadata: Dict[str, object] = {}
        truth: Optional[GroundTruth] = None
        for line_number, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(f"bad trace line {line_number}") from exc
            kind = rec.get("type")
            if kind == "header":
                epoch_length = float(rec["epoch_length"])
                metadata = dict(rec.get("metadata", {}))
            elif kind == "reading":
                readings.append(
                    TagReading(float(rec["time"]), TagId.parse(rec["tag"]))
                )
            elif kind == "report":
                heading = rec.get("heading")
                reports.append(
                    ReaderLocationReport(
                        float(rec["time"]),
                        tuple(float(v) for v in rec["position"]),
                        heading=None if heading is None else float(heading),
                    )
                )
            elif kind == "truth":
                truth = GroundTruth(
                    initial_positions={
                        int(k): np.asarray(v, dtype=float)
                        for k, v in rec["initial_positions"].items()
                    },
                    moves=[
                        ObjectMove(int(e), int(n), tuple(float(v) for v in p))
                        for e, n, p in rec.get("moves", [])
                    ],
                    reader_path=np.asarray(rec["reader_path"], dtype=float),
                    reader_headings=np.asarray(rec["reader_headings"], dtype=float),
                    shelf_tag_positions={
                        int(k): np.asarray(v, dtype=float)
                        for k, v in rec.get("shelf_tag_positions", {}).items()
                    },
                )
            else:
                raise StreamError(f"unknown record type {kind!r} on line {line_number}")
        return Trace(
            readings=readings,
            reports=reports,
            epoch_length=epoch_length,
            truth=truth,
            metadata=metadata,
        )

    @staticmethod
    def loads(text: str) -> "Trace":
        return Trace.load(io.StringIO(text))


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Concatenate traces in time order (e.g. multiple scan rounds).

    Traces must not overlap in time.  Ground truth is merged when every part
    carries it and describes the same objects: the reader path concatenates,
    later parts' initial positions become move records at their first epoch.
    """
    if not traces:
        raise StreamError("merge_traces of zero traces")
    ordered = sorted(traces, key=lambda t: t.readings[0].time if t.readings else 0.0)
    readings: List[TagReading] = []
    reports: List[ReaderLocationReport] = []
    for trace in ordered:
        if readings and trace.readings and trace.readings[0].time < readings[-1].time:
            raise StreamError("traces overlap in time; cannot merge")
        readings.extend(trace.readings)
        reports.extend(trace.reports)
    truth = None
    if all(t.truth is not None for t in ordered):
        first = ordered[0].truth
        assert first is not None
        keys = set(first.initial_positions)
        if all(set(t.truth.initial_positions) == keys for t in ordered):  # type: ignore[union-attr]
            moves: List[ObjectMove] = list(first.moves)
            offset = first.n_epochs
            for trace in ordered[1:]:
                part = trace.truth
                assert part is not None
                for number, position in part.initial_positions.items():
                    if not np.allclose(
                        position, first.initial_positions[number], atol=1e-12
                    ):
                        moves.append(
                            ObjectMove(
                                offset, number, tuple(float(v) for v in position)
                            )
                        )
                moves.extend(
                    ObjectMove(
                        m.epoch_index + offset, m.number, m.position
                    )
                    for m in part.moves
                )
                offset += part.n_epochs
            truth = GroundTruth(
                initial_positions=dict(first.initial_positions),
                moves=moves,
                reader_path=np.vstack([t.truth.reader_path for t in ordered]),  # type: ignore[union-attr]
                reader_headings=np.concatenate(
                    [t.truth.reader_headings for t in ordered]  # type: ignore[union-attr]
                ),
                shelf_tag_positions=dict(first.shelf_tag_positions),
            )
    return Trace(
        readings=readings,
        reports=reports,
        epoch_length=ordered[0].epoch_length,
        truth=truth,
        metadata={"merged_from": len(ordered)},
    )
