"""Delta materialization: overlay differential captures onto a base tree.

A *delta capture* (``FilterShard.snapshot(mode="delta")``) records what
changed in a shard since its previous capture: per-epoch scalars and the
RNG/reader state in full (they change every epoch), the complete belief /
arena / visit **id order** (tiny — it carries ordering, which is
semantically load-bearing, and deletions, which are just absences from the
list), and per-object column data only for objects whose state actually
changed.  This module replays such captures:

    full tree at epoch T  =  apply_shard_delta(tree at T-k, delta at T)

The result is **exactly** the tree a full capture at the same epoch would
have produced — array-for-array, scalar-for-scalar — which is what lets the
checkpoint layer (:mod:`.checkpoint`) restore a base + delta chain
bitwise-identically to a full snapshot, and lets tests assert that equality
directly.

Chain integrity is proven, not assumed: every capture carries a
``capture_serial`` and every delta the serial of its parent capture;
:func:`apply_shard_delta` refuses an overlay whose parent serial does not
match the base tree's serial (a *torn chain* — a capture was taken, or a
checkpoint was written, between the two).  The same check runs at save time
(:func:`.checkpoint.save_checkpoint`), so a torn chain is never written in
the first place.
"""

from __future__ import annotations

import copy
from typing import Dict, Tuple

import numpy as np

from ..errors import StateError

#: Engine-tree keys a delta ships in full (they change every epoch, or are
#: cheap): everything except the belief/arena column data.
_ENGINE_FULL_KEYS = (
    "engine",
    "capture_serial",
    "rng_state",
    "epoch_index",
    "active_count",
    "stats",
    "arena_stats",
    "last_reported",
    "last_reported_epoch",
    "reader",
    "selector",
)

#: Per-belief metadata columns (row i describes belief ``ids[i]``).
_BELIEF_COLUMNS = (
    "created",
    "last_read",
    "last_split",
    "anchors",
    "compressed",
    "gauss_mean",
    "gauss_cov",
    "settled",
    "budget_epoch",
)

#: Per-visit columns of the pipeline tree.
_VISIT_COLUMNS = ("entered", "last_read", "emitted", "has_pos", "pos")


def is_delta_state(state: dict) -> bool:
    """True when a shard state tree is a delta capture, not a full one."""
    return bool(state.get("engine", {}).get("delta")) or bool(
        state.get("pipeline", {}).get("delta")
    )


def _check_serial(base: dict, delta: dict, what: str) -> None:
    parent = delta.get("parent_capture_serial")
    have = base.get("capture_serial")
    if parent != have:
        raise StateError(
            f"torn delta chain: {what} delta chains onto capture "
            f"{parent!r} but the base tree is capture {have!r}"
        )


def _merge_rows(
    order_ids: np.ndarray,
    base_ids: np.ndarray,
    base_columns: Dict[str, np.ndarray],
    dirty_ids: np.ndarray,
    dirty_columns: Dict[str, np.ndarray],
    what: str,
) -> Dict[str, np.ndarray]:
    """Reassemble full column arrays in ``order_ids`` order.

    Each id takes its row from the dirty set when present, from the base
    otherwise; an id in neither is a torn chain.  One Python pass resolves
    each id to a (source, row) pair; the column data itself is copied with
    one fancy-index per column, so materializing a 10⁴-object shard costs a
    handful of numpy kernels, not 10⁴ × columns row assignments.  Column
    dtypes/shapes come from the base arrays (empty bases fall back to the
    dirty arrays), so the merged arrays are indistinguishable from a full
    capture's.
    """
    order = np.asarray(order_ids, dtype=np.int64)
    base_index = {
        int(n): i for i, n in enumerate(np.asarray(base_ids, dtype=np.int64))
    }
    dirty_index = {
        int(n): i for i, n in enumerate(np.asarray(dirty_ids, dtype=np.int64))
    }
    from_dirty = np.zeros(order.size, dtype=bool)
    source_row = np.zeros(order.size, dtype=np.int64)
    for i, number in enumerate(order):
        number = int(number)
        row = dirty_index.get(number)
        if row is not None:
            from_dirty[i] = True
        else:
            row = base_index.get(number)
            if row is None:
                raise StateError(
                    f"torn delta chain: {what} {number} is neither in the "
                    "base capture nor in the delta"
                )
        source_row[i] = row
    merged: Dict[str, np.ndarray] = {}
    for name in base_columns:
        base_array = np.asarray(base_columns[name])
        dirty_array = np.asarray(dirty_columns[name])
        template = base_array if base_array.size else dirty_array
        out = np.zeros((order.size,) + tuple(template.shape[1:]), dtype=template.dtype)
        if from_dirty.any():
            out[from_dirty] = dirty_array[source_row[from_dirty]]
        clean = ~from_dirty
        if clean.any():
            out[clean] = base_array[source_row[clean]]
        merged[name] = out
    return merged


def _split_blocks(
    ids: np.ndarray, counts: np.ndarray, arrays: Tuple[np.ndarray, ...], what: str
) -> Dict[int, Tuple[np.ndarray, ...]]:
    """Cut concatenated per-object arrays into an ``{id: (views...)}`` map."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    for array in arrays:
        if np.asarray(array).shape[0] != total:
            raise StateError(
                f"{what} blocks are inconsistent: rows do not match counts"
            )
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return {
        int(number): tuple(
            np.asarray(array)[int(offsets[i]) : int(offsets[i + 1])]
            for array in arrays
        )
        for i, number in enumerate(np.asarray(ids, dtype=np.int64))
    }


def apply_arena_delta(base: dict, delta: dict) -> dict:
    """Overlay an arena delta capture on a full arena snapshot."""
    order_ids = np.asarray(delta["ids"], dtype=np.int64)
    counts = np.asarray(delta["counts"], dtype=np.int64)
    count_of = {int(n): int(c) for n, c in zip(order_ids, counts)}
    base_blocks = _split_blocks(
        base["ids"],
        base["counts"],
        (base["positions"], base["parents"], base["log_weights"]),
        "base arena",
    )
    dirty_ids = np.asarray(delta["dirty_ids"], dtype=np.int64)
    dirty_blocks = _split_blocks(
        dirty_ids,
        np.asarray([count_of[int(n)] for n in dirty_ids], dtype=np.int64),
        (delta["positions"], delta["parents"], delta["log_weights"]),
        "delta arena",
    )
    clean_parents: Dict[int, np.ndarray] = {}
    if delta.get("parents_dirty"):
        clean_ids = [int(n) for n in order_ids if int(n) not in dirty_blocks]
        clean_parents = {
            number: block[0]
            for number, block in _split_blocks(
                np.asarray(clean_ids, dtype=np.int64),
                np.asarray([count_of[n] for n in clean_ids], dtype=np.int64),
                (delta["clean_parents"],),
                "delta arena parents",
            ).items()
        }
    # Empty fallbacks inherit the captured arrays' dtype (float32 arenas
    # must materialize bitwise-identically, not silently promote).
    base_positions = np.asarray(base["positions"])
    positions, parents, log_weights = [], [], []
    for number in order_ids:
        number = int(number)
        block = dirty_blocks.get(number)
        if block is None:
            block = base_blocks.get(number)
            if block is None:
                raise StateError(
                    f"torn delta chain: arena block {number} is neither in "
                    "the base capture nor in the delta"
                )
            if block[0].shape[0] != count_of[number]:
                raise StateError(
                    f"torn delta chain: arena block {number} changed size "
                    "without being captured as dirty"
                )
            if number in clean_parents:
                block = (block[0], clean_parents[number], block[2])
        positions.append(block[0])
        parents.append(block[1])
        log_weights.append(block[2])
    return {
        "ids": order_ids.copy(),
        "counts": counts.copy(),
        "positions": (
            np.concatenate(positions)
            if positions
            else np.zeros((0, 3), dtype=base_positions.dtype)
        ),
        "parents": (
            np.concatenate(parents) if parents else np.zeros(0, dtype=np.int32)
        ),
        "log_weights": (
            np.concatenate(log_weights)
            if log_weights
            else np.zeros(0, dtype=np.asarray(base["log_weights"]).dtype)
        ),
    }


def apply_engine_delta(base: dict, delta: dict) -> dict:
    """Overlay an engine delta capture on a full engine state tree."""
    if base.get("engine") != "factored" or delta.get("engine") != "factored":
        raise StateError("delta materialization supports the factored engine only")
    if base.get("delta"):
        raise StateError("base of a delta overlay must be a full capture")
    if not delta.get("delta"):
        raise StateError("overlay is not a delta capture")
    _check_serial(base, delta, "engine")
    out = {key: delta[key] for key in _ENGINE_FULL_KEYS}
    # Clean-marker resolution: a delta whose reader belief / selector tree
    # did not change since the parent ships ``{"__clean__": True}`` instead
    # of the state; the materialized tree takes the base's copy verbatim
    # (array copies / deepcopy — no re-encoding, so bitwise-exact).
    reader = out["reader"]
    if isinstance(reader, dict) and reader.get("__clean__"):
        base_reader = base.get("reader")
        if not isinstance(base_reader, dict) or base_reader.get("__clean__"):
            raise StateError(
                "torn delta chain: reader marked clean but the base capture "
                "carries no reader belief"
            )
        out["reader"] = {
            name: np.asarray(value).copy() for name, value in base_reader.items()
        }
    selector = out["selector"]
    if isinstance(selector, dict) and selector.get("__clean__"):
        base_selector = base.get("selector")
        if not isinstance(base_selector, dict) or base_selector.get("__clean__"):
            raise StateError(
                "torn delta chain: selector marked clean but the base capture "
                "carries no selector state"
            )
        out["selector"] = copy.deepcopy(base_selector)
    out["arena"] = apply_arena_delta(base["arena"], delta["arena"])
    beliefs = delta["beliefs"]
    out["beliefs"] = {
        "ids": np.asarray(beliefs["ids"], dtype=np.int64).copy(),
        **_merge_rows(
            beliefs["ids"],
            base["beliefs"]["ids"],
            {name: np.asarray(base["beliefs"][name]) for name in _BELIEF_COLUMNS},
            beliefs["dirty_ids"],
            {name: np.asarray(beliefs[name]) for name in _BELIEF_COLUMNS},
            "belief",
        ),
    }
    return out


def apply_pipeline_delta(base: dict, delta: dict) -> dict:
    """Overlay a pipeline delta capture on a full pipeline state tree."""
    if base.get("delta"):
        raise StateError("base of a delta overlay must be a full capture")
    if not delta.get("delta"):
        raise StateError("overlay is not a delta capture")
    _check_serial(base, delta, "pipeline")
    visits = delta["visits"]
    # Key order mirrors a full capture's, so the materialized tree is
    # indistinguishable from one even in serialized (skeleton) form.
    return {
        "capture_serial": delta["capture_serial"],
        "emitted_ever": delta["emitted_ever"],
        "last_epoch_time": delta["last_epoch_time"],
        "visits": {
            "ids": np.asarray(visits["ids"], dtype=np.int64).copy(),
            **_merge_rows(
                visits["ids"],
                base["visits"]["ids"],
                {name: np.asarray(base["visits"][name]) for name in _VISIT_COLUMNS},
                visits["dirty_ids"],
                {name: np.asarray(visits[name]) for name in _VISIT_COLUMNS},
                "visit",
            ),
        },
    }


def apply_shard_delta(base: dict, delta: dict) -> dict:
    """Materialize one shard's full state tree from base + one delta."""
    return {
        "engine": apply_engine_delta(base["engine"], delta["engine"]),
        "pipeline": apply_pipeline_delta(base["pipeline"], delta["pipeline"]),
    }
