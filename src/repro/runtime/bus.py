"""The event bus: a merged, time-ordered channel of cleaned location events.

The paper's architecture is a pipeline — noisy epochs in, clean location
events out, continuous queries over the clean stream.  The bus is the seam
between the last two stages: shards publish their merged events here, and
any number of consumers (query bridges, sinks, metrics) subscribe without
the producers knowing about them.

The bus enforces the one invariant every downstream consumer relies on:
**event time never goes backwards**.  The CQL engine batches tuples into
ticks by timestamp and raises on regressions, so catching a mis-merged
stream here — at the producer seam, with shard context — beats a confusing
failure deep inside a query window.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import StreamError
from ..streams.records import LocationEvent
from ..streams.sinks import EventSink


class EventBus:
    """Time-ordered pub/sub channel for :class:`LocationEvent` streams.

    Subscribers are called synchronously, in subscription order, for every
    published event; close hooks run once when the producer closes the bus.
    """

    def __init__(self, enforce_order: bool = True):
        self._subscribers: List[Callable[[LocationEvent], None]] = []
        self._close_hooks: List[Callable[[], None]] = []
        self._enforce_order = enforce_order
        self._last_time: Optional[float] = None
        self._closed = False
        #: Events published so far (diagnostics).
        self.published = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def last_time(self) -> Optional[float]:
        """Timestamp of the most recent published event (the watermark)."""
        return self._last_time

    def subscribe(
        self,
        callback: Callable[[LocationEvent], None],
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register a per-event callback (and optionally a close hook)."""
        self._subscribers.append(callback)
        if on_close is not None:
            self._close_hooks.append(on_close)

    def subscribe_sink(self, sink: EventSink, close: bool = True) -> None:
        """Feed every bus event into an :class:`EventSink`.

        ``close`` forwards the bus close to ``sink.close()`` — leave it on
        for sinks the bus owns outright, off for sinks shared with other
        producers.
        """
        self.subscribe(sink.emit, on_close=sink.close if close else None)

    # ------------------------------------------------------------------
    def publish(self, event: LocationEvent) -> None:
        if self._closed:
            raise StreamError("cannot publish on a closed event bus")
        if (
            self._enforce_order
            and self._last_time is not None
            and event.time < self._last_time
        ):
            raise StreamError(
                f"event time went backwards on the bus: {event.time} < "
                f"{self._last_time} (shard merge out of order?)"
            )
        self._last_time = event.time
        self.published += 1
        for callback in self._subscribers:
            callback(event)

    def publish_many(self, events) -> None:
        for event in events:
            self.publish(event)

    def resume_from(self, last_time: Optional[float]) -> None:
        """Seed the ordering watermark from a restored checkpoint.

        A runtime restored mid-trace re-publishes nothing, but the events it
        *will* publish must not step behind what already reached downstream
        consumers before the checkpoint; seeding the watermark keeps the
        monotonicity check meaningful across the restore boundary.
        """
        if self._closed:
            raise StreamError("cannot resume a closed event bus")
        if self.published:
            raise StreamError("cannot seed the watermark of a bus already in use")
        self._last_time = None if last_time is None else float(last_time)

    def close(self) -> None:
        """End of stream: run every close hook.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for hook in self._close_hooks:
            hook()
