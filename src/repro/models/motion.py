"""Reader motion model (Section III-A).

"The new location is the old location plus a noisy version of the average
velocity":  ``R_t = R_{t-1} + Delta + eps`` with ``eps ~ N(0, Sigma_m)``
(diagonal).  The reader pose also carries a heading ``phi`` that performs a
small Gaussian random walk (plus optional scripted turns fed from the data —
e.g. the lab robot turning around at the end of a shelf); the paper folds
orientation into ``R_t``'s pose vector, and this keeps the treatment uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MotionParams:
    """Parameters of the reader motion model.

    ``velocity`` is the average displacement per epoch (the paper's Delta);
    ``sigma`` the per-axis standard deviation of the motion noise (square
    root of the diagonal of Sigma_m); ``heading_sigma`` the heading random
    walk std-dev in radians.
    """

    velocity: Tuple[float, float, float] = (0.0, 0.1, 0.0)
    sigma: Tuple[float, float, float] = (0.01, 0.01, 0.0)
    heading_sigma: float = 0.01

    def __post_init__(self) -> None:
        if len(self.velocity) != 3 or len(self.sigma) != 3:
            raise ConfigurationError("velocity and sigma must be 3-vectors")
        if any(s < 0 for s in self.sigma) or self.heading_sigma < 0:
            raise ConfigurationError("noise std-devs must be non-negative")
        if not all(math.isfinite(v) for v in self.velocity):
            raise ConfigurationError(f"non-finite velocity {self.velocity}")

    @property
    def velocity_array(self) -> np.ndarray:
        return np.asarray(self.velocity, dtype=float)

    @property
    def sigma_array(self) -> np.ndarray:
        return np.asarray(self.sigma, dtype=float)


class ReaderMotionModel:
    """Samples and scores reader-pose transitions."""

    def __init__(self, params: MotionParams = MotionParams()):
        self.params = params

    def propagate(
        self,
        positions: np.ndarray,
        headings: np.ndarray,
        rng: np.random.Generator,
        velocity_override: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``R_t`` for a batch of particles from ``R_{t-1}``.

        ``velocity_override`` lets the proposal use per-step control input
        when available (e.g. the robot reports "turning now"); the paper's
        model uses the constant average velocity, which is the default.
        """
        n = positions.shape[0]
        velocity = (
            self.params.velocity_array
            if velocity_override is None
            else np.asarray(velocity_override, dtype=float)
        )
        noise = rng.normal(0.0, 1.0, size=(n, 3)) * self.params.sigma_array[None, :]
        new_positions = positions + velocity[None, :] + noise
        if self.params.heading_sigma > 0:
            new_headings = headings + rng.normal(0.0, self.params.heading_sigma, size=n)
        else:
            new_headings = headings.copy()
        # Vectorized wrap into (-pi, pi].
        new_headings = np.pi - np.mod(np.pi - new_headings, 2.0 * np.pi)
        return new_positions, new_headings

    def log_transition(
        self,
        old_positions: np.ndarray,
        new_positions: np.ndarray,
    ) -> np.ndarray:
        """log p(R_t | R_{t-1}) per particle (position part; the heading walk
        cancels between proposal and model because we propose from the model).

        Axes with zero noise contribute only when the displacement differs
        from the mean velocity, in which case the transition is impossible;
        we use a large negative constant rather than -inf so a single
        impossible particle cannot poison a whole log-sum-exp.
        """
        delta = new_positions - old_positions - self.params.velocity_array[None, :]
        sigma = self.params.sigma_array
        out = np.zeros(delta.shape[0])
        for axis in range(3):
            s = sigma[axis]
            if s > 0:
                out += -0.5 * (delta[:, axis] / s) ** 2 - math.log(s * math.sqrt(2 * math.pi))
            else:
                out += np.where(np.abs(delta[:, axis]) < 1e-9, 0.0, -1e6)
        return out
