"""Self-calibration with EM (Section III-C of the paper).

A new deployment starts with *no* calibrated sensor model — read rates
depend on the reader, tag density, nearby metal, and so on.  The paper's
answer: collect a short training trace in place, anchor it with a few tags
of known location, and learn every model parameter with EM.

This example learns the sensor model, the reader motion parameters, and the
location-sensing noise from a 20-tag training trace, varying how many tags
have known locations (the paper's Fig 5e axis), then shows the downstream
effect on inference accuracy.

Run:  python examples/self_calibration.py
"""

import numpy as np

from repro import EMConfig, InferenceConfig, calibrate
from repro.eval import run_factored, run_uniform
from repro.eval.report import format_table
from repro.learning.logistic import field_of_truth_sensor, fit_sensor_to_field
from repro.simulation import LayoutConfig, WarehouseConfig, WarehouseSimulator


def main() -> None:
    # Training deployment: 20 tags, none pre-labelled.
    train_sim = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=20, n_shelf_tags=0), seed=31)
    )
    train = train_sim.generate()
    print(f"training trace: {train.n_readings} readings of 20 tags")

    # Test deployment: 10 objects + 4 shelf tags (the paper's Fig 5e scene).
    test_sim = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=10, n_shelf_tags=4), seed=32)
    )
    test = test_sim.generate()

    em_config = EMConfig(
        iterations=3,
        posterior_samples=3,
        inference=InferenceConfig(reader_particles=100, object_particles=250),
    )
    infer_config = InferenceConfig(reader_particles=120, object_particles=400)

    rows = []
    for n_known in (0, 4, 12, 20):
        known = dict(list(train_sim.layout.object_positions.items())[:n_known])
        result = calibrate(train, train_sim.layout.shelves, known, em_config)
        model = test_sim.world_model(sensor_params=result.sensor_params)
        test_error = run_factored(test, model, infer_config).error
        rows.append(
            [
                n_known,
                f"({result.sensor_params.a[0]:+.2f}, {result.sensor_params.a[1]:+.2f}, "
                f"{result.sensor_params.a[2]:+.2f})",
                f"{result.motion_params.velocity[1]:+.3f}",
                test_error.xy,
            ]
        )
        if n_known == 20:
            print(
                f"\nlearned with 20 anchors: velocity "
                f"{np.round(result.motion_params.velocity_array, 3).tolist()} "
                f"(true: [0, 0.1, 0]), sensing bias "
                f"{np.round(result.sensing_params.mean_array, 3).tolist()} (true: 0)"
            )

    # Reference points: the true field's logistic projection, and uniform.
    projection = fit_sensor_to_field(
        field_of_truth_sensor(test_sim.config.sensor), max_distance=4.5
    )
    true_error = run_factored(
        test, test_sim.world_model(sensor_params=projection.sensor_params), infer_config
    ).error
    uniform_error = run_uniform(test, test_sim.layout.shelves).error

    print()
    print(
        format_table(
            ["known tags", "learned a-coeffs", "learned v_y", "test XY error (ft)"],
            rows,
            title="EM self-calibration vs number of anchor tags (cf. Fig 5e)",
        )
    )
    print(f"\ntrue-model inference error : {true_error.xy:.3f} ft")
    print(f"uniform baseline error     : {uniform_error.xy:.3f} ft")


if __name__ == "__main__":
    main()
