"""Failure-injection and adversarial-input tests.

A cleaning system deployed against real hardware sees pathological streams:
dropouts, duplicate readings, phantom tags, all-negative epochs, corrupted
trace files.  These tests pin down that the library degrades gracefully
(clear exceptions or sensible estimates) instead of silently corrupting
state.

The second half is the crash harness for the durable-state subsystem: the
process is "killed" mid-checkpoint (write faults injected at every point of
the save path through the :mod:`repro.faults` plan, not monkeypatching),
between delta-chain links, and inside worker processes — and after every
kill the ``LATEST`` pointer must still reference a complete,
materializable chain from which a restore resumes bitwise-identically.
The seeded chaos soak at the end sweeps randomized fault plans over both
executors: every injected fault must either recover byte-identically
(supervised) or fail loudly with a typed error — never hang, never
silently diverge.
"""

import json
import os

import numpy as np
import pytest

from repro import faults
from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
    SupervisorConfig,
)
from repro.errors import InferenceError, StateError, StreamError
from repro.faults import FaultPlan, FaultRule
from repro.inference.factored import FactoredParticleFilter
from repro.runtime import ShardedRuntime
from repro.state import (
    latest_checkpoint,
    load_checkpoint,
    restore_runtime,
    save_checkpoint,
)
from repro.streams.records import make_epoch
from repro.streams.sources import Trace

from test_inference_factored import drive, scan_epochs


class TestStreamDropouts:
    def test_long_location_dropout(self, small_model, fast_config):
        """The positioning system dies mid-scan: epochs carry no reported
        position.  Odometry control falls back to the motion model and the
        filter keeps running."""
        epochs = []
        for t in range(50):
            reported = None if 15 <= t < 35 else (0.0, 0.1 * t)
            epochs.append(make_epoch(float(t), reported, reported_heading=0.0))
        engine = drive(small_model, fast_config, epochs)
        mean, _ = engine.reader_estimate()
        assert np.isfinite(mean).all()
        assert mean[1] == pytest.approx(4.9, abs=1.0)

    def test_reading_only_epochs(self, small_model, fast_config):
        """Readings arrive but no location reports after the first epoch."""
        epochs = [make_epoch(0.0, (0.0, 0.0), reported_heading=0.0)]
        for t in range(1, 20):
            epochs.append(
                make_epoch(float(t), None, object_tags=[0] if t % 3 == 0 else [])
            )
        engine = drive(small_model, fast_config, epochs)
        assert 0 in engine.known_objects()
        assert np.isfinite(engine.object_estimate(0).mean).all()


class TestPhantomAndDuplicateReads:
    def test_phantom_tag_far_from_everything(self, small_model, fast_config):
        """A tag read once by radio reflection: the belief exists, sits in
        the init cone, and does not disturb other objects."""
        epochs = scan_epochs(3.0, n=60)
        # Inject one phantom read of tag 99 at epoch 5.
        e = epochs[5]
        epochs[5] = make_epoch(
            e.time,
            e.reported_position,
            object_tags=[t.number for t in e.object_tags] + [99],
            reported_heading=0.0,
        )
        engine = drive(small_model, fast_config, epochs)
        assert 99 in engine.known_objects()
        assert engine.object_estimate(0).mean[1] == pytest.approx(3.0, abs=0.6)

    def test_every_tag_read_every_epoch(self, small_model, fast_config):
        """Degenerate 100%-read-rate stream: tags 0..3 read every epoch from
        everywhere.  Estimates stay finite and on the shelf."""
        epochs = [
            make_epoch(float(t), (0.0, 0.1 * t), object_tags=[0, 1, 2, 3], reported_heading=0.0)
            for t in range(40)
        ]
        engine = drive(small_model, fast_config, epochs)
        for n in range(4):
            estimate = engine.object_estimate(n)
            assert np.isfinite(estimate.mean).all()
            assert small_model.shelves.bounding_box().expanded(1.0).contains_point(
                estimate.mean
            )


class TestAdversarialEpochs:
    def test_teleporting_reports_do_not_crash(self, small_model, fast_config):
        """Reported positions jump wildly (broken positioning).  The filter
        must survive (weights renormalize) even if accuracy is gone."""
        rng = np.random.default_rng(0)
        epochs = [
            make_epoch(float(t), tuple(rng.uniform(-5, 5, size=2)), reported_heading=0.0)
            for t in range(30)
        ]
        engine = drive(small_model, fast_config, epochs)
        mean, _ = engine.reader_estimate()
        assert np.isfinite(mean).all()

    def test_time_gaps_between_epochs(self, small_model, fast_config):
        """Epochs with large time gaps (reader paused): nothing special is
        required of the filter, but the pipeline visit logic must re-arm."""
        from repro.config import OutputPolicyConfig
        from repro.inference.pipeline import CleaningPipeline
        from repro.streams.sinks import CollectingSink

        engine = FactoredParticleFilter(small_model, fast_config)
        sink = CollectingSink()
        pipeline = CleaningPipeline(
            engine, OutputPolicyConfig(delay_s=5.0, on_scan_complete=False), sink
        )
        for t in (0.0, 1.0, 2.0, 500.0, 501.0, 502.0, 503.0, 504.0, 505.0, 506.0):
            pipeline.step(
                make_epoch(t, (0.0, 1.0), object_tags=[0], reported_heading=0.0)
            )
        # Two visits (gap > 30 s) -> two emissions.
        assert len(sink) == 2


class TestCorruptTraces:
    def test_truncated_json_line(self):
        with pytest.raises(StreamError):
            Trace.loads('{"type": "reading", "time": 1.0, "tag": "object:1"\n')

    def test_half_written_reading(self):
        with pytest.raises((StreamError, KeyError)):
            Trace.loads('{"type": "reading", "time": 1.0}\n')

    def test_empty_trace_is_valid(self):
        trace = Trace.loads("")
        assert trace.n_readings == 0
        assert trace.epochs() == []

    def test_garbled_tag_kind(self):
        with pytest.raises(StreamError):
            Trace.loads('{"type": "reading", "time": 1.0, "tag": "ghost:1"}\n')


class TestExtremeConfigs:
    def test_two_particles_per_object(self, small_model):
        """The minimum legal particle count must not crash (accuracy aside)."""
        config = InferenceConfig(reader_particles=2, object_particles=2, seed=0)
        engine = drive(small_model, config, scan_epochs(3.0, n=40))
        assert np.isfinite(engine.object_estimate(0).mean).all()

    def test_zero_motion_noise_model(self, single_shelf, fast_config):
        from repro.models.joint import RFIDWorldModel
        from repro.models.motion import MotionParams
        from repro.models.sensor import SensorParams

        model = RFIDWorldModel.build(
            single_shelf,
            sensor_params=SensorParams(a=(4.0, 0.0, -0.9), b=(0.0, -6.0)),
            motion_params=MotionParams(velocity=(0, 0.1, 0), sigma=(0, 0, 0), heading_sigma=0),
        )
        epochs = [make_epoch(float(t), (0.0, 0.1 * t)) for t in range(20)]
        engine = drive(model, fast_config, epochs)
        mean, _ = engine.reader_estimate()
        assert mean[1] == pytest.approx(1.9, abs=0.2)


# ---------------------------------------------------------------------------
# Crash harness: kill the process mid-checkpoint / between delta links
# ---------------------------------------------------------------------------
CRASH_POLICY = OutputPolicyConfig(delay_s=20.0)


@pytest.fixture(scope="module")
def ck_scenario():
    from repro.simulation.layout import LayoutConfig
    from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

    simulator = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=6, n_shelf_tags=3), seed=11)
    )
    trace = simulator.generate()
    config = InferenceConfig(reader_particles=50, object_particles=100, seed=7)
    model = simulator.world_model()
    reference = ShardedRuntime(
        model, config, RuntimeConfig(n_shards=2), CRASH_POLICY
    ).run(trace.epochs()).events
    return model, trace, config, reference


def _delta_runtime_config(directory, executor="serial", supervisor=None):
    return RuntimeConfig(
        n_shards=2,
        executor=executor,
        checkpoint_every_s=6.0,
        checkpoint_dir=str(directory),
        checkpoint_keep=2,
        checkpoint_mode="delta",
        checkpoint_full_every=3,
        supervisor=supervisor,
    )


def assert_latest_is_restorable(directory, model, trace, reference):
    """The crash invariant: if LATEST exists it references a complete,
    materializable chain, and the run resumed from it finishes
    bitwise-identically to the uninterrupted reference."""
    latest = latest_checkpoint(directory)
    if latest is None:
        return 0
    manifest = load_checkpoint(latest)  # materializes the whole chain
    runtime, manifest = restore_runtime(latest, model)
    sink = runtime.run(trace.epochs(start=manifest.epochs_processed))
    tail = [e for e in reference if e.time > (manifest.bus_last_time or -1)]
    assert len(sink.events) == len(tail)
    for ours, ref in zip(sink.events, tail):
        assert ours.time == ref.time and ours.tag == ref.tag
        np.testing.assert_array_equal(ours.position, ref.position)
    return manifest.epochs_processed


class TestCrashMidCheckpoint:
    """Kill the writer at every stage of the save path.

    The ``checkpoint.write`` fault point sits after each per-shard
    ``.npz`` write; a counted injection there simulates the power failing
    mid-checkpoint.  The directory-level atomicity contract says the crash
    may lose the checkpoint being written, but never the previous one —
    and LATEST (only moved after the atomic rename) must keep referencing
    a complete chain.
    """

    @pytest.mark.parametrize("fail_on_call", [1, 2, 3, 4, 6, 7])
    def test_latest_never_references_a_torn_chain(
        self, ck_scenario, tmp_path, fail_on_call
    ):
        model, trace, config, reference = ck_scenario
        faults.install(
            FaultPlan(
                rules=(
                    FaultRule(
                        "checkpoint.write",
                        nth=fail_on_call,
                        message="injected crash: power lost mid-write",
                    ),
                )
            )
        )
        runtime = ShardedRuntime(
            model, config, _delta_runtime_config(tmp_path), CRASH_POLICY
        )
        crashed = False
        try:
            runtime.run(trace.epochs())
        except OSError:
            crashed = True
            runtime.abort()
        finally:
            writes = faults.hits("checkpoint.write")
            faults.clear()
        assert crashed == (writes >= fail_on_call)
        # No half-written checkpoint directory survives the crash...
        for name in os.listdir(tmp_path):
            assert not name.endswith(".tmp"), f"torn write left {name}"
        # ...and whatever LATEST points at restores and resumes bitwise.
        assert_latest_is_restorable(tmp_path, model, trace, reference)

    def test_kill_between_deltas_resumes_from_last_complete_link(
        self, ck_scenario, tmp_path
    ):
        """Hard-kill (abort, no finish) after several delta links landed:
        LATEST sits on the last complete link and resumes bitwise."""
        model, trace, config, reference = ck_scenario
        runtime = ShardedRuntime(
            model, config, _delta_runtime_config(tmp_path), CRASH_POLICY
        )
        epochs = trace.epochs()
        for epoch in epochs[: int(len(epochs) * 0.8)]:
            runtime.step(epoch)
        runtime.abort()  # simulated kill: no finish, no final flush
        latest = latest_checkpoint(tmp_path)
        assert latest is not None
        kinds = {
            name: json.load(
                open(os.path.join(tmp_path, name, "manifest.json"))
            ).get("kind")
            for name in os.listdir(tmp_path)
            if name.startswith("epoch_")
        }
        assert "delta" in kinds.values(), f"no delta link landed: {kinds}"
        resumed_from = assert_latest_is_restorable(tmp_path, model, trace, reference)
        assert resumed_from > 0

    def test_stale_tmp_turd_is_ignored_everywhere(self, ck_scenario, tmp_path):
        """A SIGKILL mid-write leaves an ``epoch_*.tmp`` directory: the
        LATEST resolver, the loader, and rotation must all ignore it."""
        from repro.state import rotate_checkpoints

        model, trace, config, reference = ck_scenario
        runtime = ShardedRuntime(
            model, config, _delta_runtime_config(tmp_path), CRASH_POLICY
        )
        epochs = trace.epochs()
        for epoch in epochs[: len(epochs) // 2]:
            runtime.step(epoch)
        runtime.abort()
        turd = tmp_path / "epoch_99999999.tmp"
        os.makedirs(turd)
        (turd / "manifest.json").write_text("{not json")
        assert latest_checkpoint(tmp_path) is not None
        assert "tmp" not in os.path.basename(latest_checkpoint(tmp_path))
        rotate_checkpoints(tmp_path, keep=2)
        assert turd.is_dir()  # rotation only manages epoch_* directories
        assert_latest_is_restorable(tmp_path, model, trace, reference)


class TestWorkerCrashMidCheckpoint:
    def test_worker_killed_mid_checkpoint_fails_loudly_and_chain_survives(
        self, ck_scenario, tmp_path
    ):
        """SIGKILL one shard worker, then attempt a delta checkpoint: the
        save fails with a clear error, nothing lands on disk, and the
        previous checkpoint still restores."""
        model, trace, config, reference = ck_scenario
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(n_shards=2, executor="process"),
            CRASH_POLICY,
        )
        epochs = trace.epochs()
        split = len(epochs) // 2
        try:
            for epoch in epochs[:split]:
                runtime.step(epoch)
            base = tmp_path / "epoch_base"
            save_checkpoint(runtime, base)
            for epoch in epochs[split : split + 3]:
                runtime.step(epoch)
            runtime.shards[1].process.kill()
            runtime.shards[1].process.join(5.0)
            with pytest.raises(InferenceError, match="died"):
                save_checkpoint(
                    runtime, tmp_path / "epoch_delta", mode="delta", parent=base
                )
        finally:
            runtime.abort()
        assert not os.path.exists(tmp_path / "epoch_delta")
        assert not os.path.exists(str(tmp_path / "epoch_delta") + ".tmp")
        # The pre-crash checkpoint restores (into in-process shards) and
        # resumes bitwise.
        restored, manifest = restore_runtime(base, model)
        sink = restored.run(trace.epochs(start=manifest.epochs_processed))
        tail = [e for e in reference if e.time > (manifest.bus_last_time or -1)]
        assert len(sink.events) == len(tail)
        for ours, ref in zip(sink.events, tail):
            assert ours.time == ref.time and ours.tag == ref.tag
            np.testing.assert_array_equal(ours.position, ref.position)

    def test_periodic_delta_chain_under_process_executor_survives_kill(
        self, ck_scenario, tmp_path
    ):
        """The full loop under the process executor: periodic delta chain,
        hard kill, restore from LATEST, bitwise resume."""
        model, trace, config, reference = ck_scenario
        runtime = ShardedRuntime(
            model,
            config,
            _delta_runtime_config(tmp_path, executor="process"),
            CRASH_POLICY,
        )
        epochs = trace.epochs()
        for epoch in epochs[: int(len(epochs) * 0.8)]:
            runtime.step(epoch)
        runtime.abort()
        resumed_from = assert_latest_is_restorable(tmp_path, model, trace, reference)
        assert resumed_from > 0


class TestChainBreakRecovery:
    def test_explicit_checkpoint_mid_chain_forces_full_rebase(
        self, ck_scenario, tmp_path
    ):
        """An explicit checkpoint() between periodic deltas advances the
        capture baseline; the periodic coordinator must detect the broken
        chain and rebase with a full checkpoint instead of persisting a
        torn delta."""
        model, trace, config, reference = ck_scenario
        directory = tmp_path / "periodic"
        runtime = ShardedRuntime(
            model, config, _delta_runtime_config(directory), CRASH_POLICY
        )
        epochs = trace.epochs()
        interloper_done = False
        for epoch in epochs:
            runtime.step(epoch)
            if not interloper_done and latest_checkpoint(directory) is not None:
                runtime.checkpoint(tmp_path / "explicit")  # breaks the chain
                interloper_done = True
        runtime.finish()
        assert interloper_done
        kinds = [
            json.load(open(os.path.join(directory, name, "manifest.json"))).get(
                "kind"
            )
            for name in sorted(os.listdir(directory))
            if name.startswith("epoch_")
        ]
        # Every retained checkpoint still materializes.
        assert_latest_is_restorable(directory, model, trace, reference)
        # And the chain was rebased at least once beyond the initial full.
        assert kinds.count("full") >= 1


# ---------------------------------------------------------------------------
# Seeded chaos soak: randomized fault plans, both executors
# ---------------------------------------------------------------------------


def _assert_events_bitwise(events, reference):
    assert len(events) == len(reference)
    for ours, ref in zip(events, reference):
        assert ours.time == ref.time and ours.tag == ref.tag
        np.testing.assert_array_equal(ours.position, ref.position)


class TestChaosSoak:
    """Every injected fault either recovers byte-identically (supervised)
    or fails loudly with a typed error — never hangs, never silently
    diverges.  Plans come from ``FaultPlan.random`` under fixed seeds, so
    the sweep is randomized but perfectly reproducible."""

    @pytest.mark.parametrize("seed", range(4))
    def test_chaos_supervised_process_recovers_byte_identical(
        self, ck_scenario, tmp_path, seed
    ):
        """Worker crashes (os._exit) and hangs (delay past the 1 s op
        deadline) under supervision: every seed must self-heal and finish
        with the undisturbed run's exact output."""
        model, trace, config, reference = ck_scenario
        faults.install(
            FaultPlan.random(
                seed,
                catalogue=[("worker.step", ("exit", "delay"))],
                n_rules=1,
                max_nth=24,
                delay_s=2.0,
            )
        )
        runtime = ShardedRuntime(
            model,
            config,
            _delta_runtime_config(
                tmp_path,
                executor="process",
                supervisor=SupervisorConfig(backoff_base_s=0.01, op_timeout_s=1.0),
            ),
            CRASH_POLICY,
        )
        try:
            sink = runtime.run(trace.epochs())
        finally:
            faults.clear()
        assert runtime.supervisor_stats()["restarts"] >= 1  # the fault fired
        _assert_events_bitwise(sink.events, reference)

    @pytest.mark.parametrize("seed", range(4))
    def test_chaos_serial_checkpoint_faults_fail_loudly_then_restore(
        self, ck_scenario, tmp_path, seed
    ):
        """Unsupervised serial runs under randomized checkpoint write/torn
        faults: a firing fault aborts the run loudly; whatever LATEST
        points at afterwards restores and resumes bitwise."""
        model, trace, config, reference = ck_scenario
        faults.install(
            FaultPlan.random(
                seed,
                catalogue=[("checkpoint.write", ("raise", "torn"))],
                n_rules=1,
                max_nth=8,
            )
        )
        runtime = ShardedRuntime(
            model, config, _delta_runtime_config(tmp_path), CRASH_POLICY
        )
        completed = False
        try:
            sink = runtime.run(trace.epochs())
            completed = True
        except OSError:
            pass  # run() already aborted the runtime
        finally:
            faults.clear()
        if completed:
            _assert_events_bitwise(sink.events, reference)
        for name in os.listdir(tmp_path):
            assert not name.endswith(".tmp"), f"torn write left {name}"
        assert_latest_is_restorable(tmp_path, model, trace, reference)


# ---------------------------------------------------------------------------
# Serve mode: kill -9 the live service at adversarial points
# ---------------------------------------------------------------------------


def _src_dir() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


_SERVE_FLAGS = [
    "--particles", "120",
    "--reader-particles", "60",
    "--delay", "5.0",
    "--shards", "2",
]


def _spawn_serve(trace_path, sock, log, out, *extra):
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = _src_dir()
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(trace_path),
         "--socket", str(sock), "--emissions", str(log),
         *_SERVE_FLAGS, *extra],
        stdout=open(out, "ab"),
        stderr=open(out, "ab"),
        env=env,
    )


def _wait_for_socket(sock, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(sock):
            return
        time.sleep(0.01)
    raise AssertionError(f"service never bound {sock}")


class TestServeKillNine:
    """The exactly-once contract of the ingest service, enforced the hard
    way: SIGKILL the serving process at adversarial points (before the
    first checkpoint, deep mid-stream, while a checkpoint directory is
    half-written), restart with ``--resume``, rerun the *same* replay, and
    require the final emission log to be byte-identical to an
    uninterrupted run's."""

    @pytest.fixture(scope="class")
    def serve_env(self, tmp_path_factory):
        from repro.simulation.layout import LayoutConfig
        from repro.simulation.truth_sensor import ConeTruthSensor
        from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

        base = tmp_path_factory.mktemp("serve_kill")
        simulator = WarehouseSimulator(
            WarehouseConfig(
                layout=LayoutConfig(n_objects=6, n_shelf_tags=2),
                sensor=ConeTruthSensor(rr_major=0.9),
                n_rounds=2,
                seed=7,
            )
        )
        trace = simulator.generate()
        trace_path = base / "trace.jsonl"
        with open(trace_path, "w") as fp:
            trace.dump(fp)

        # The uninterrupted reference run, through the same socket pipeline.
        sock = base / "baseline.sock"
        log = base / "baseline.jsonl"
        server = _spawn_serve(trace_path, sock, log, base / "baseline.out")
        _wait_for_socket(sock)
        self._replay(trace, sock)
        assert server.wait(timeout=120) == 0, open(base / "baseline.out").read()
        baseline = open(log, "rb").read()
        assert baseline.count(b"\n") >= 4  # enough emissions to tear between
        return trace, trace_path, baseline

    @staticmethod
    def _replay(trace, sock, rate=0.0):
        from repro.serve import ReplaySource

        return ReplaySource(str(sock), trace, n_sources=3, rate=rate).run()

    @staticmethod
    def _kill_when(server, condition, timeout=90.0):
        import signal
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if server.poll() is not None:
                return "exited"
            if condition():
                os.kill(server.pid, signal.SIGKILL)
                server.wait(timeout=30)
                return "killed"
            time.sleep(0.001)
        return "timeout"

    @pytest.mark.parametrize("trigger", ["before_checkpoint", "mid_stream", "mid_checkpoint"])
    def test_kill_nine_resume_replay_is_byte_identical(
        self, serve_env, tmp_path, trigger
    ):
        import threading

        from repro.errors import ServeError

        trace, trace_path, baseline = serve_env
        sock = tmp_path / "serve.sock"
        log = tmp_path / "emissions.jsonl"
        ck = tmp_path / "ck"
        out = tmp_path / "serve.out"
        flags = ["--checkpoint-every", "3.0", "--checkpoint-dir", str(ck)]

        def log_size():
            try:
                return os.path.getsize(log)
            except OSError:
                return 0

        def checkpoint_tmp_visible():
            try:
                return any(n.endswith(".tmp") for n in os.listdir(ck))
            except OSError:
                return False

        conditions = {
            # Before the first checkpoint lands: resume must fall back to a
            # fresh start that *verifies* the existing log, not re-append.
            "before_checkpoint": lambda: log_size() > 0,
            # Deep mid-stream, checkpoints behind and emissions ahead.
            "mid_stream": lambda: log_size() >= 0.5 * len(baseline),
            # Inside a checkpoint write (a half-written *.tmp directory) —
            # rare to catch, so fall back to a late mid-stream kill.
            "mid_checkpoint": lambda: (
                checkpoint_tmp_visible() or log_size() >= 0.6 * len(baseline)
            ),
        }

        # The late triggers can lose the race to a fast finish: under the
        # delayed output policy much of the log flushes in the end-of-
        # stream burst, so a loaded machine may see the server exit before
        # the killer's next poll.  A clean exit proves nothing either way —
        # retry the whole kill attempt on fresh paths.
        status = {}
        for attempt in range(3):
            if attempt:
                log = tmp_path / f"emissions-retry{attempt}.jsonl"
                ck = tmp_path / f"ck-retry{attempt}"
                flags = ["--checkpoint-every", "3.0", "--checkpoint-dir", str(ck)]
            server = _spawn_serve(trace_path, sock, log, out, *flags)
            _wait_for_socket(sock)
            status = {}
            killer = threading.Thread(
                target=lambda: status.update(
                    result=self._kill_when(server, conditions[trigger])
                )
            )
            killer.start()
            try:
                # Paced so the kill window is generous; the killer
                # interrupts this replay mid-flight.
                self._replay(trace, sock, rate=80.0)
            except ServeError:
                pass
            killer.join(timeout=120)
            if status.get("result") == "killed":
                break
            try:
                os.unlink(sock)
            except OSError:
                pass
        assert status.get("result") == "killed", status

        partial = open(log, "rb").read() if os.path.exists(log) else b""
        assert baseline.startswith(partial)  # durable prefix, never garbage

        # Restart with --resume and rerun the identical replay.  The killed
        # process left its socket file behind; drop it so the bind wait
        # below observes the *new* server's socket, not the corpse's.
        try:
            os.unlink(sock)
        except OSError:
            pass
        server = _spawn_serve(
            trace_path, sock, log, out, *flags, "--resume"
        )
        _wait_for_socket(sock)
        report = self._replay(trace, sock)
        assert server.wait(timeout=120) == 0, open(out).read()

        assert open(log, "rb").read() == baseline
        # The rerun was a replay, not a fresh stream: every record either
        # skipped client-side (acked sequence) or deduped server-side.
        assert all(r["sent"] <= r["records"] for r in report.values())
