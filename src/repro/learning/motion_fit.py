"""Closed-form M-steps for the motion and location-sensing models.

Given (samples of) the true reader trajectory, the Gaussian components of the
model have standard maximum-likelihood estimates:

* average velocity ``Delta`` = mean of per-epoch displacements,
* motion noise ``Sigma_m`` = variance of displacement residuals,
* sensing bias ``mu_s``  = mean of (reported - true) residuals,
* sensing noise ``Sigma_s`` = variance of those residuals.

The functions accept per-sample weights so the EM driver can feed weighted
posterior samples directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import LearningError
from ..models.motion import MotionParams
from ..models.sensing import SensingNoiseParams


def _weighted_mean_std(
    values: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted per-axis mean and std of an ``(n, 3)`` array."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] != 3:
        raise LearningError(f"expected (n, 3) array, got {values.shape}")
    if values.shape[0] == 0:
        raise LearningError("no samples")
    if weights is None:
        w = np.ones(values.shape[0])
    else:
        w = np.asarray(weights, dtype=float).ravel()
        if w.shape[0] != values.shape[0]:
            raise LearningError("weights length mismatch")
        if (w < 0).any() or w.sum() <= 0:
            raise LearningError("weights must be non-negative and not all zero")
    w = w / w.sum()
    mean = (w[:, None] * values).sum(axis=0)
    var = (w[:, None] * (values - mean[None, :]) ** 2).sum(axis=0)
    return mean, np.sqrt(np.maximum(var, 0.0))


def fit_motion_params(
    trajectory: np.ndarray,
    weights: Optional[np.ndarray] = None,
    heading_sigma: float = 0.01,
    min_sigma: float = 1e-4,
) -> MotionParams:
    """Estimate ``Delta`` and ``Sigma_m`` from a reader trajectory.

    ``trajectory`` is ``(T, 3)``; displacement t uses weight ``weights[t]``
    (weights length T-1, or None).  ``min_sigma`` floors the noise so the
    motion model never becomes degenerate for the particle filter.
    """
    trajectory = np.asarray(trajectory, dtype=float)
    if trajectory.ndim != 2 or trajectory.shape[0] < 2:
        raise LearningError("need at least two trajectory points")
    displacements = np.diff(trajectory, axis=0)
    mean, sigma = _weighted_mean_std(displacements, weights)
    sigma = np.maximum(sigma, min_sigma)
    # z-axis in planar scenes: displacement identically 0 -> keep sigma 0-ish
    # but respect the floor only on active axes.
    active = np.abs(displacements).max(axis=0) > 1e-12
    sigma = np.where(active, sigma, 0.0)
    return MotionParams(
        velocity=tuple(float(v) for v in mean),
        sigma=tuple(float(s) for s in sigma),
        heading_sigma=heading_sigma,
    )


def fit_sensing_params(
    reported: np.ndarray,
    true_positions: np.ndarray,
    weights: Optional[np.ndarray] = None,
    min_sigma: float = 1e-4,
) -> SensingNoiseParams:
    """Estimate ``mu_s`` and ``Sigma_s`` from report/true position pairs."""
    reported = np.asarray(reported, dtype=float)
    true_positions = np.asarray(true_positions, dtype=float)
    if reported.shape != true_positions.shape:
        raise LearningError(
            f"shape mismatch: reported {reported.shape} vs true {true_positions.shape}"
        )
    residuals = reported - true_positions
    mean, sigma = _weighted_mean_std(residuals, weights)
    active = np.abs(residuals).max(axis=0) > 1e-12
    sigma = np.where(active, np.maximum(sigma, min_sigma), 0.0)
    return SensingNoiseParams(
        mean=tuple(float(v) for v in mean),
        sigma=tuple(float(s) for s in sigma),
    )
