"""Tests for the warehouse simulator (Section V-A)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.layout import LayoutConfig
from repro.simulation.movement import single_group_move
from repro.simulation.truth_sensor import ConeTruthSensor
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            WarehouseConfig(read_period_epochs=0)
        with pytest.raises(SimulationError):
            WarehouseConfig(n_rounds=0)
        with pytest.raises(SimulationError):
            WarehouseConfig(epoch_length_s=0)


class TestGenerate:
    def test_trace_has_truth_and_reports(self, small_trace):
        assert small_trace.truth is not None
        assert len(small_trace.reports) == small_trace.truth.reader_path.shape[0]
        assert small_trace.n_readings > 0

    def test_all_objects_read_at_full_rate(self, small_warehouse, small_trace):
        # RRmajor = 1.0 and the robot passes every object: all tags read.
        assert small_trace.object_tag_numbers() == list(
            range(small_warehouse.config.layout.n_objects)
        )

    def test_shelf_tags_read(self, small_trace):
        assert len(small_trace.shelf_tag_numbers()) >= 1

    def test_reported_positions_near_truth(self, small_trace):
        reported = np.array([r.array for r in small_trace.reports])
        truth = small_trace.truth.reader_path
        err = np.abs(reported - truth).max()
        assert err < 0.1  # sigma 0.01, no bias

    def test_heading_carried_in_reports(self, small_trace):
        assert all(r.heading is not None for r in small_trace.reports)

    def test_bias_injected(self):
        sim = WarehouseSimulator(
            WarehouseConfig(
                layout=LayoutConfig(n_objects=4),
                location_bias=(0.0, 0.5, 0.0),
                seed=3,
            )
        )
        trace = sim.generate()
        reported = np.array([r.array for r in trace.reports])
        truth = trace.truth.reader_path
        assert (reported[:, 1] - truth[:, 1]).mean() == pytest.approx(0.5, abs=0.02)

    def test_read_rate_controls_readings(self):
        def count(rr):
            sim = WarehouseSimulator(
                WarehouseConfig(
                    layout=LayoutConfig(n_objects=6),
                    sensor=ConeTruthSensor(rr_major=rr),
                    seed=5,
                )
            )
            return sim.generate().n_readings

        assert count(1.0) > count(0.5)

    def test_read_period_thins_readings(self):
        def count(period):
            sim = WarehouseSimulator(
                WarehouseConfig(
                    layout=LayoutConfig(n_objects=6),
                    read_period_epochs=period,
                    seed=5,
                )
            )
            return sim.generate().n_readings

        assert count(1) > count(3) * 1.5

    def test_two_rounds_doubles_scan(self):
        one = WarehouseSimulator(
            WarehouseConfig(layout=LayoutConfig(n_objects=5), n_rounds=1, seed=7)
        ).generate()
        two = WarehouseSimulator(
            WarehouseConfig(layout=LayoutConfig(n_objects=5), n_rounds=2, seed=7)
        ).generate()
        assert len(two.reports) == pytest.approx(2 * len(one.reports), rel=0.1)

    def test_scheduled_move_recorded(self):
        move = single_group_move(30, [0, 1], 3.0)
        sim = WarehouseSimulator(
            WarehouseConfig(layout=LayoutConfig(n_objects=6), moves=(move,), seed=9)
        )
        trace = sim.generate()
        moved = {m.number for m in trace.truth.moves}
        assert moved == {0, 1}
        finals = trace.truth.final_object_locations()
        initials = trace.truth.initial_positions
        assert finals[0][1] - initials[0][1] == pytest.approx(3.0)
        assert finals[2][1] == initials[2][1]

    def test_determinism(self):
        config = WarehouseConfig(layout=LayoutConfig(n_objects=4), seed=13)
        a = WarehouseSimulator(config).generate()
        b = WarehouseSimulator(config).generate()
        assert a.dumps() == b.dumps()


class TestWorldModel:
    def test_matches_simulator_motion(self, small_warehouse):
        model = small_warehouse.world_model()
        assert model.motion.params.velocity_array[1] == pytest.approx(0.1)
        assert set(model.shelf_tags) == set(
            small_warehouse.layout.shelf_tag_positions
        )

    def test_random_walk_variant(self, small_warehouse):
        model = small_warehouse.world_model(random_walk_motion=True)
        assert model.motion.params.velocity_array.tolist() == [0, 0, 0]
        assert model.motion.params.sigma_array[1] > 0.1
