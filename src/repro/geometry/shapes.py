"""Shelf regions and related planar shapes.

The paper's world is "a large storage area comprising shelves S and a set of
objects O".  A :class:`ShelfRegion` is the rectangular slab of space a shelf
occupies; the object location model relocates objects "uniformly across all
shelves", and the baselines sample object locations over the intersection of
the sensing region and the shelf, so shelves need uniform sampling and
point-membership tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import GeometryError
from .box import Box
from .vec import as_point


@dataclass(frozen=True)
class ShelfRegion:
    """A shelf: an id plus the box of space it occupies."""

    shelf_id: int
    box: Box

    def contains(self, point) -> bool:
        return self.box.contains_point(point)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.box.sample(rng, n)

    @property
    def center(self) -> np.ndarray:
        return self.box.center


class ShelfSet:
    """An ordered collection of shelves with area-weighted uniform sampling.

    "Uniform across all shelves" is interpreted as uniform over the union of
    the shelf regions: a shelf is chosen with probability proportional to its
    xy-area (shelves are flat in the simulated scenes) and a point is drawn
    uniformly inside it.
    """

    def __init__(self, shelves: Sequence[ShelfRegion]):
        if not shelves:
            raise GeometryError("ShelfSet requires at least one shelf")
        ids = [s.shelf_id for s in shelves]
        if len(set(ids)) != len(ids):
            raise GeometryError(f"duplicate shelf ids in {ids}")
        self._shelves: List[ShelfRegion] = list(shelves)
        areas = np.array([max(s.box.area_xy(), 1e-12) for s in shelves])
        self._weights = areas / areas.sum()

    def __len__(self) -> int:
        return len(self._shelves)

    def __iter__(self):
        return iter(self._shelves)

    def __getitem__(self, index: int) -> ShelfRegion:
        return self._shelves[index]

    def by_id(self, shelf_id: int) -> ShelfRegion:
        for shelf in self._shelves:
            if shelf.shelf_id == shelf_id:
                return shelf
        raise GeometryError(f"no shelf with id {shelf_id}")

    def bounding_box(self) -> Box:
        out = self._shelves[0].box
        for shelf in self._shelves[1:]:
            out = out.union(shelf.box)
        return out

    def containing(self, point) -> Optional[ShelfRegion]:
        """The first shelf containing ``point``, or ``None``."""
        p = as_point(point)
        for shelf in self._shelves:
            if shelf.box.contains_point(p):
                return shelf
        return None

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Mask of which rows of ``points`` lie on any shelf."""
        pts = np.asarray(points, dtype=float)
        mask = np.zeros(pts.shape[0], dtype=bool)
        for shelf in self._shelves:
            mask |= shelf.box.contains_points(pts)
        return mask

    def sample_uniform(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` points uniformly over the union of all shelves."""
        choice = rng.choice(len(self._shelves), size=n, p=self._weights)
        out = np.empty((n, 3))
        for idx in range(len(self._shelves)):
            mask = choice == idx
            count = int(mask.sum())
            if count:
                out[mask] = self._shelves[idx].sample(rng, count)
        return out

    def nearest_point_on_shelves(self, point) -> np.ndarray:
        """Project ``point`` onto the closest shelf box (used to snap
        estimates back onto physically-possible locations)."""
        p = as_point(point)
        best = None
        best_d = float("inf")
        for shelf in self._shelves:
            lo = np.asarray(shelf.box.lo)
            hi = np.asarray(shelf.box.hi)
            clamped = np.minimum(np.maximum(p, lo), hi)
            d = float(np.linalg.norm(clamped - p))
            if d < best_d:
                best_d = d
                best = clamped
        assert best is not None
        return best
