"""Unit tests for the durable-state primitives: the RNG codec, the state
tree split/join, and the snapshot/restore hooks on the arena, region index,
pipeline, and factored engine.

The load-bearing guarantees tested here:

* RNG bit-generator state survives the snapshot format *exactly* — the next
  1000 draws from a restored generator match the original;
* the arena's parent remapping consumes RNG draws independently of the
  slab's hole layout (what makes a compacted-on-write snapshot resume
  bitwise-identically);
* an engine restored mid-run — including after compression freed blocks and
  the slab compacted — continues bitwise-identically to one never stopped.
"""

import json

import numpy as np
import pytest

from repro.config import (
    ArenaConfig,
    InferenceConfig,
)
from repro.errors import InferenceError, StateError
from repro.inference.arena import BeliefArena
from repro.inference.factored import FactoredParticleFilter
from repro.inference.pipeline import CleaningPipeline
from repro.spatial.region_index import SensingRegionIndex
from repro.state import (
    generator_from_state,
    join_state_tree,
    jsonable_to_rng_state,
    rng_state_to_jsonable,
    split_state_tree,
)
from repro.state.snapshot import missing_array_keys
from repro.streams.sinks import CollectingSink


class TestRngCodec:
    def test_pcg64_round_trip_next_1000_draws_match(self):
        rng = np.random.default_rng(1234)
        rng.normal(size=257)  # advance into a non-trivial state
        captured = rng.bit_generator.state
        # Through the full snapshot format: JSON-able -> json text -> back.
        wire = json.loads(json.dumps(rng_state_to_jsonable(captured)))
        restored = generator_from_state(jsonable_to_rng_state(wire))
        np.testing.assert_array_equal(
            restored.normal(size=1000), rng.normal(size=1000)
        )
        # And the streams keep agreeing across draw-kind changes.
        np.testing.assert_array_equal(
            restored.integers(0, 1 << 40, size=100),
            rng.integers(0, 1 << 40, size=100),
        )

    def test_mt19937_state_with_array_leaf_round_trips(self):
        rng = np.random.Generator(np.random.MT19937(5))
        rng.random(size=3)
        wire = json.loads(json.dumps(rng_state_to_jsonable(rng.bit_generator.state)))
        restored = generator_from_state(jsonable_to_rng_state(wire))
        np.testing.assert_array_equal(restored.random(size=64), rng.random(size=64))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(StateError):
            generator_from_state({"bit_generator": "NotAGenerator"})

    def test_unserializable_leaf_rejected(self):
        with pytest.raises(StateError):
            rng_state_to_jsonable({"bad": object()})


class TestStateTreeSplitJoin:
    def test_round_trip(self):
        tree = {
            "a": np.arange(6).reshape(2, 3),
            "nested": {"b": np.ones(4), "scalar": 7, "flag": True, "none": None},
            "list": [np.zeros(2), "text", 3.5],
            "np_scalar": np.int64(9),
        }
        skeleton, arrays = split_state_tree(tree)
        json.dumps(skeleton)  # skeleton must be pure JSON
        joined = join_state_tree(skeleton, arrays)
        np.testing.assert_array_equal(joined["a"], tree["a"])
        np.testing.assert_array_equal(joined["nested"]["b"], tree["nested"]["b"])
        np.testing.assert_array_equal(joined["list"][0], tree["list"][0])
        assert joined["nested"]["scalar"] == 7
        assert joined["nested"]["none"] is None
        assert joined["np_scalar"] == 9 and isinstance(joined["np_scalar"], int)

    def test_missing_array_detected(self):
        skeleton, arrays = split_state_tree({"x": np.ones(3)})
        assert missing_array_keys(skeleton, arrays) == []
        with pytest.raises(StateError):
            join_state_tree(skeleton, {})
        assert missing_array_keys(skeleton, {}) == ["x"]

    def test_reserved_key_rejected(self):
        with pytest.raises(StateError):
            split_state_tree({"__array__": "oops"})


def _filled_arena(**config):
    arena = BeliefArena(ArenaConfig(**config)) if config else BeliefArena()
    rng = np.random.default_rng(0)
    for oid, k in ((3, 5), (7, 4), (1, 6)):
        arena.set_object(
            oid,
            rng.normal(size=(k, 3)),
            rng.integers(0, 8, size=k).astype(np.int32),
            rng.normal(size=k),
        )
    return arena


class TestArenaSnapshot:
    def test_round_trip_preserves_blocks(self):
        arena = _filled_arena()
        state = arena.snapshot()
        other = BeliefArena(ArenaConfig(initial_capacity=1))
        other.load_snapshot(state)
        assert sorted(other.object_ids()) == sorted(arena.object_ids())
        for oid in arena.object_ids():
            np.testing.assert_array_equal(other.positions(oid), arena.positions(oid))
            np.testing.assert_array_equal(other.parents(oid), arena.parents(oid))
            np.testing.assert_array_equal(
                other.log_weights(oid), arena.log_weights(oid)
            )
        assert other.free_rows == 0  # restored slab is compacted

    def test_snapshot_compacts_holes_on_write(self):
        arena = _filled_arena()
        arena.free(7, compact_ok=False)
        assert arena.free_rows > 0
        state = arena.snapshot()
        assert int(np.asarray(state["counts"]).sum()) == arena.used_rows
        other = BeliefArena()
        other.load_snapshot(state)
        assert other.used_rows == arena.used_rows and other.free_rows == 0

    def test_bad_snapshots_rejected(self):
        arena = _filled_arena()
        state = arena.snapshot()
        clipped = dict(state, positions=state["positions"][:-1])
        with pytest.raises(InferenceError):
            BeliefArena().load_snapshot(clipped)
        dup = dict(state, ids=np.array([3, 3, 1]))
        with pytest.raises(InferenceError):
            BeliefArena().load_snapshot(dup)

    def test_live_row_mask(self):
        arena = _filled_arena()
        assert arena.live_row_mask().all()
        arena.free(7, compact_ok=False)
        mask = arena.live_row_mask()
        assert mask.sum() == arena.used_rows
        assert mask[arena._slice(3)].all() and mask[arena._slice(1)].all()

    def test_remap_parents_rng_independent_of_hole_layout(self):
        """The same live content with and without holes must consume the
        same RNG draws and produce identical live parents — the property
        that makes compact-on-write checkpoints resume bitwise."""
        with_hole = _filled_arena()
        with_hole.free(7, compact_ok=False)
        compacted = BeliefArena()
        compacted.load_snapshot(with_hole.snapshot())
        mapping = np.array([2, -1, 0, -1, 4, 5, -1, 7])  # several dropped
        rng_a, rng_b = np.random.default_rng(42), np.random.default_rng(42)
        with_hole.remap_parents(mapping, rng_a)
        compacted.remap_parents(mapping, rng_b)
        for oid in (3, 1):
            np.testing.assert_array_equal(
                with_hole.parents(oid), compacted.parents(oid)
            )
        # Equal post-remap RNG states == equal number of draws consumed.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestRegionIndexSnapshot:
    def test_round_trip_preserves_queries_and_order(self):
        from repro.geometry.box import Box

        index = SensingRegionIndex(max_regions=8, max_entries=4)
        for i in range(6):
            index.record(Box((i, 0, 0), (i + 1.5, 1, 1)), [i, i + 100])
        state = index.snapshot()
        json.dumps(state)  # must be pure JSON
        other = SensingRegionIndex(max_regions=8, max_entries=4)
        other.load_snapshot(state)
        probe = Box((2.2, 0, 0), (3.2, 1, 1))
        assert other.case2_candidates(probe) == index.case2_candidates(probe)
        assert len(other) == len(index)
        other.check_consistent()
        # Recording order survived: the next eviction removes the same
        # (oldest) region in both.
        for idx in (index, other):
            for j in range(6, 10):
                idx.record(Box((j, 0, 0), (j + 1.5, 1, 1)), [j])
        assert index.objects_registered() == other.objects_registered()


class _StubEngine:
    epoch_index = 0

    def __init__(self):
        self.known = []

    def step(self, epoch):
        pass

    def known_objects(self):
        return self.known

    def object_estimate(self, number):
        from repro.inference.estimates import LocationEstimate

        return LocationEstimate(
            mean=np.array([1.0, 2.0, 0.0]), covariance=np.eye(3) * 1e-4, sample_size=4
        )


class TestPipelineSnapshot:
    def test_round_trip_preserves_visits_and_order(self):
        from repro.streams.records import make_epoch

        sink = CollectingSink()
        pipeline = CleaningPipeline(_StubEngine(), sink=sink)
        pipeline.engine.known = [4, 2]
        pipeline.step(make_epoch(0.0, (0, 0, 0), object_tags=[4]))
        pipeline.step(make_epoch(5.0, (0, 0, 0), object_tags=[2]))
        state = pipeline.snapshot_state()
        other = CleaningPipeline(_StubEngine(), sink=CollectingSink())
        other.engine.known = [4, 2]
        other.restore_state(state)
        assert list(other._visits) == list(pipeline._visits)  # insertion order
        for number in pipeline._visits:
            a, b = pipeline._visits[number], other._visits[number]
            assert (a.entered_time, a.last_read_time, a.emitted_this_visit) == (
                b.entered_time,
                b.last_read_time,
                b.emitted_this_visit,
            )
        assert other._emitted_ever == pipeline._emitted_ever
        assert other._last_epoch_time == pipeline._last_epoch_time


@pytest.fixture(scope="module")
def scenario():
    from repro.simulation.layout import LayoutConfig
    from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

    simulator = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=8, n_shelf_tags=3), seed=11)
    )
    return simulator.world_model(), simulator.generate()


class TestEngineSnapshotRestore:
    def _run_split(self, model, trace, config, split):
        """Reference run vs. stop-snapshot-restore-continue run."""
        epochs = trace.epochs()
        reference = FactoredParticleFilter(model, config)
        for epoch in epochs:
            reference.step(epoch)
        original = FactoredParticleFilter(model, config)
        for epoch in epochs[:split]:
            original.step(epoch)
        state = original.snapshot_state()
        resumed = FactoredParticleFilter(model, config)
        resumed.restore_state(state)
        for epoch in epochs[split:]:
            resumed.step(epoch)
        return reference, resumed

    def _assert_bitwise(self, reference, resumed):
        assert resumed.known_objects() == reference.known_objects()
        assert resumed.stats == reference.stats
        for number in reference.known_objects():
            np.testing.assert_array_equal(
                resumed.object_estimate(number).mean,
                reference.object_estimate(number).mean,
            )
            a, b = resumed.belief(number), reference.belief(number)
            assert a.compressed == b.compressed
            if not a.compressed:
                np.testing.assert_array_equal(a.particles, b.particles)
                np.testing.assert_array_equal(a.parents, b.parents)
                np.testing.assert_array_equal(a.log_weights, b.log_weights)
        np.testing.assert_array_equal(
            resumed.reader_estimate()[0], reference.reader_estimate()[0]
        )
        assert (
            resumed._rng.bit_generator.state == reference._rng.bit_generator.state
        )

    def test_restore_continues_bitwise(self, scenario):
        model, trace = scenario
        config = InferenceConfig(reader_particles=50, object_particles=100, seed=7)
        reference, resumed = self._run_split(model, trace, config, split=20)
        self._assert_bitwise(reference, resumed)

    def test_restore_after_compaction_is_bitwise(self, scenario):
        """Compression frees blocks, the tiny arena compacts, and the
        snapshot (compacted on write) must still resume bitwise — the
        arena's hole layout is not part of the semantic state."""
        from dataclasses import replace

        model, trace = scenario
        config = replace(
            InferenceConfig(
                reader_particles=50, object_particles=100, seed=7
            ).with_compression(unread_epochs=3),
            arena=ArenaConfig(initial_capacity=128, compaction_threshold=0.1),
        )
        epochs = trace.epochs()
        split = int(len(epochs) * 0.7)
        probe = FactoredParticleFilter(model, config)
        for epoch in epochs[:split]:
            probe.step(epoch)
        assert probe.arena.stats["compactions"] > 0, "scenario must compact"
        assert probe.stats["compressions"] > 0, "scenario must compress"
        reference, resumed = self._run_split(model, trace, config, split=split)
        self._assert_bitwise(reference, resumed)
        assert resumed.arena.stats["compactions"] == reference.arena.stats["compactions"]

    def test_restore_with_spatial_index_is_bitwise(self, scenario):
        model, trace = scenario
        config = InferenceConfig(
            reader_particles=50, object_particles=100, seed=7
        ).with_index()
        reference, resumed = self._run_split(model, trace, config, split=25)
        self._assert_bitwise(reference, resumed)
        assert len(resumed._selector.index) == len(reference._selector.index)

    def test_wrong_engine_kind_rejected(self, scenario):
        model, trace = scenario
        engine = FactoredParticleFilter(model, InferenceConfig())
        with pytest.raises(StateError):
            engine.restore_state({"engine": "naive"})
