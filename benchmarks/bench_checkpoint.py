"""Checkpoint/restore cost: snapshot latency, restore latency, and bytes.

The durable-state subsystem (``repro.state``) serializes every shard's
belief arena, RNG stream, reader belief, and visit bookkeeping to disk and
rebuilds a live runtime from it.  This benchmark measures what that costs at
production scale, in two parts:

* **full rows** — one coordinated full checkpoint at 2000 active tags for
  shard counts {1, 4}: ``save_s``, ``restore_s``, the elastic re-shard to 2
  shards, and on-disk bytes;
* **delta rows** — the differential-checkpoint economics at 2000 and 10000
  tags with the spatial index on (the paper's scalability configuration):
  a warm population of which only a few percent moved since the last
  checkpoint, measuring a delta save vs a full save of the *same* state —
  latency, bytes, and the bytes ratio — plus the chain restore
  (base + delta materialized).

Standalone (no pytest-benchmark dependency) so CI can smoke-run it::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py [--quick]
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --quick \
        --no-write --check BENCH_checkpoint.json

``--check`` turns the run into a regression guard.  Enforced invariants are
machine-independent (measured within the same run, so shared CI runners
cannot flake them): every delta row must keep ``bytes_ratio >=
--check-min-ratio`` and save at least ``--check-min-speedup``x faster than
the full save of the same state.  Absolute save latency vs the recorded
baseline is additionally enforced for full rows at the baseline's scale
(skipped in ``--quick``) within ``--check-tolerance``.  Results are written
to ``BENCH_checkpoint.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import InferenceConfig, OutputPolicyConfig, RuntimeConfig
from repro.geometry.box import Box
from repro.geometry.shapes import ShelfRegion, ShelfSet
from repro.models.joint import RFIDWorldModel
from repro.models.motion import MotionParams
from repro.models.sensing import SensingNoiseParams
from repro.models.sensor import SensorParams
from repro.runtime import ShardedRuntime
from repro.state import checkpoint_size_bytes, restore_runtime, save_checkpoint
from repro.streams.records import make_epoch

READS_PER_EPOCH = 16
N_TAGS = 2000
SHARD_COUNTS = (1, 4)
RESHARD_TO = 2
DELTA_TAG_COUNTS = (2000, 10000)
DELTA_EPOCHS = 10  # epochs between the base checkpoint and the delta

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_checkpoint.json"


def build_model(n_objects: int) -> RFIDWorldModel:
    length = max(8.0, n_objects * 0.05)
    shelves = ShelfSet([ShelfRegion(0, Box((2.0, 0.0, 0.0), (3.0, length, 0.0)))])
    return RFIDWorldModel.build(
        shelves,
        shelf_tags={
            0: np.array([2.0, 1.0, 0.0]),
            1: np.array([2.0, length - 1.0, 0.0]),
        },
        sensor_params=SensorParams(a=(4.0, 0.0, -0.9), b=(0.0, -6.0)),
        motion_params=MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.01, 0.01, 0.0)),
        sensing_params=SensingNoiseParams(sigma=(0.01, 0.01, 0.0)),
    )


def warmed_runtime(
    model: RFIDWorldModel, n_shards: int, n_tags: int, epochs: int
) -> ShardedRuntime:
    """A runtime mid-trace with the full population resident."""
    config = InferenceConfig(reader_particles=100, object_particles=100, seed=3)
    runtime = ShardedRuntime(
        model,
        config,
        RuntimeConfig(n_shards=n_shards),
        OutputPolicyConfig(delay_s=1e9, on_scan_complete=False),
    )
    runtime.step(
        make_epoch(0.0, (0.0, 1.0), object_tags=list(range(n_tags)), reported_heading=0.0)
    )
    for t in range(1, 1 + epochs):
        reads = [(t * READS_PER_EPOCH + i) % n_tags for i in range(READS_PER_EPOCH)]
        runtime.step(
            make_epoch(
                float(t), (0.0, 1.0 + 0.1 * t), object_tags=reads, reported_heading=0.0
            )
        )
    return runtime


def measure(model: RFIDWorldModel, n_shards: int, n_tags: int, epochs: int) -> dict:
    runtime = warmed_runtime(model, n_shards, n_tags, epochs)
    live_bytes = sum(
        int(row.get("arena_memory_bytes", 0)) for row in runtime.shard_stats()
    )
    with tempfile.TemporaryDirectory() as scratch:
        target = os.path.join(scratch, "ck")
        start = time.perf_counter()
        runtime.checkpoint(target)
        save_s = time.perf_counter() - start
        size = checkpoint_size_bytes(target)
        runtime.abort()

        start = time.perf_counter()
        restored, manifest = restore_runtime(target, model)
        restore_s = time.perf_counter() - start
        assert len(restored.known_objects()) == n_tags
        assert manifest.epochs_processed == epochs + 1
        restored.abort()

        start = time.perf_counter()
        resharded, _ = restore_runtime(
            target, model, runtime_config=RuntimeConfig(n_shards=RESHARD_TO)
        )
        reshard_s = time.perf_counter() - start
        assert len(resharded.known_objects()) == n_tags
        resharded.abort()
    return {
        "kind": "full",
        "n_shards": n_shards,
        "active_tags": n_tags,
        "epochs_before_checkpoint": epochs + 1,
        "save_s": round(save_s, 4),
        "restore_s": round(restore_s, 4),
        "reshard_to": RESHARD_TO,
        "reshard_s": round(reshard_s, 4),
        "bytes": int(size),
        "live_belief_bytes": int(live_bytes),
        "bytes_per_tag": round(size / n_tags, 1),
    }


def measure_delta(model: RFIDWorldModel, n_tags: int, delta_epochs: int) -> dict:
    """Full-vs-delta save at the same state, few tags moved since the base.

    The population is created in one burst, then the reader travels away so
    the spatial index retires it from the active set — the steady state of
    a large deployment, where each inter-checkpoint window touches only the
    tags near the reader.  ``moved_fraction`` records how much of the
    population was read (and therefore re-propagated) between the base
    checkpoint and the measured one.
    """
    config = InferenceConfig(
        reader_particles=100, object_particles=100, seed=3
    ).with_index()
    runtime = ShardedRuntime(
        model,
        config,
        RuntimeConfig(),
        OutputPolicyConfig(delay_s=1e9, on_scan_complete=False),
    )
    runtime.step(
        make_epoch(0.0, (0.0, 1.0), object_tags=list(range(n_tags)), reported_heading=0.0)
    )
    # Travel beyond the sensing range so past regions stop intersecting the
    # current box and the bulk of the population goes inactive.
    warmup = 25
    for t in range(1, warmup):
        runtime.step(
            make_epoch(float(t), (0.0, 1.0 + 0.5 * t), reported_heading=0.0)
        )
    moved: set = set()
    with tempfile.TemporaryDirectory() as scratch:
        base = os.path.join(scratch, "base")
        save_checkpoint(runtime, base)
        for t in range(warmup, warmup + delta_epochs):
            reads = [
                (t * READS_PER_EPOCH + i) % n_tags for i in range(READS_PER_EPOCH)
            ]
            moved.update(reads)
            runtime.step(
                make_epoch(
                    float(t),
                    (0.0, 1.0 + 0.5 * t),
                    object_tags=reads,
                    reported_heading=0.0,
                )
            )
        delta_path = os.path.join(scratch, "delta")
        start = time.perf_counter()
        save_checkpoint(runtime, delta_path, mode="delta", parent=base)
        delta_save_s = time.perf_counter() - start

        full_path = os.path.join(scratch, "full")
        start = time.perf_counter()
        save_checkpoint(runtime, full_path)
        full_save_s = time.perf_counter() - start
        runtime.abort()

        delta_bytes = checkpoint_size_bytes(delta_path)
        full_bytes = checkpoint_size_bytes(full_path)

        start = time.perf_counter()
        restored, manifest = restore_runtime(delta_path, model)
        chain_restore_s = time.perf_counter() - start
        assert manifest.kind == "delta"
        assert len(restored.known_objects()) == n_tags
        restored.abort()
    return {
        "kind": "delta",
        "n_shards": 1,
        "active_tags": n_tags,
        "epochs_since_base": delta_epochs,
        "moved_fraction": round(len(moved) / n_tags, 4),
        "delta_save_s": round(delta_save_s, 4),
        "full_save_s": round(full_save_s, 4),
        "delta_bytes": int(delta_bytes),
        "full_bytes": int(full_bytes),
        "bytes_ratio": round(full_bytes / delta_bytes, 2),
        "save_speedup": round(full_save_s / delta_save_s, 2),
        "chain_restore_s": round(chain_restore_s, 4),
    }


def _check_regression(
    results: list,
    baseline_path: str,
    tolerance: float,
    min_ratio: float,
    min_speedup: float,
) -> bool:
    """Save-latency/bytes regression guard.

    Machine-independent invariants are *enforced* (they compare the same
    run against itself, so a shared CI runner cannot flake them): every
    delta row must keep ``bytes_ratio >= min_ratio`` and save at least
    ``min_speedup``x faster than the full save of the same state.
    Absolute latency vs the recorded baseline is enforced only for full
    rows measured at the baseline's scale (a quick run never matches, so
    CI skips it); for delta rows it is reported but informational — the
    baseline was recorded on a different machine.
    """
    with open(baseline_path) as fp:
        baseline = json.load(fp)["results"]
    recorded = {
        (row.get("kind", "full"), row["n_shards"], row["active_tags"]): row
        for row in baseline
    }
    ok = True
    print(f"\nregression check vs {baseline_path} (tolerance {tolerance:.0%}):")
    for row in results:
        key = (row["kind"], row["n_shards"], row["active_tags"])
        label = f"{key[0]} n_shards={key[1]} tags={key[2]}"
        if row["kind"] == "delta":
            ratio_ok = row["bytes_ratio"] >= min_ratio
            speed_ok = row["save_speedup"] >= min_speedup
            print(
                f"  {label}: bytes ratio {row['bytes_ratio']:.2f} "
                f"(floor {min_ratio:.2f}), save speedup "
                f"{row['save_speedup']:.2f}x (floor {min_speedup:.2f}x) "
                f"{'ok' if ratio_ok and speed_ok else 'REGRESSION'}"
            )
            ok = ok and ratio_ok and speed_ok
        base_row = recorded.get(key)
        metric = "delta_save_s" if row["kind"] == "delta" else "save_s"
        if base_row is None or metric not in base_row:
            print(f"  {label}: no baseline at this scale, latency skipped")
            continue
        ceiling = (1.0 + tolerance) * base_row[metric]
        measured = row[metric]
        enforced = row["kind"] == "full"
        slow = measured > ceiling
        print(
            f"  {label}: {metric} {measured:.3f}s vs baseline "
            f"{base_row[metric]:.3f}s (ceiling {ceiling:.3f}s) "
            f"{'REGRESSION' if slow and enforced else 'slow (informational)' if slow else 'ok'}"
        )
        if slow and enforced:
            ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller population (CI smoke run)"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip BENCH_checkpoint.json"
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        metavar="BASELINE_JSON",
        help="compare against a recorded BENCH_checkpoint.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=1.0,
        help="allowed fractional save-latency increase over the baseline "
        "(default 1.0 — CI machines vary)",
    )
    parser.add_argument(
        "--check-min-ratio",
        type=float,
        default=5.0,
        help="minimum full/delta bytes ratio a delta row must keep "
        "(default 5.0, the acceptance floor)",
    )
    parser.add_argument(
        "--check-min-speedup",
        type=float,
        default=1.5,
        help="minimum full/delta save-latency speedup a delta row must "
        "keep, measured within the same run (default 1.5)",
    )
    args = parser.parse_args()

    n_tags = 200 if args.quick else N_TAGS
    epochs = 3 if args.quick else 10
    delta_tag_counts = (2000,) if args.quick else DELTA_TAG_COUNTS
    model = build_model(n_tags)

    results = []
    print(
        f"{'shards':>7} {'save_s':>8} {'restore_s':>10} {'reshard_s':>10} "
        f"{'MiB':>8} {'B/tag':>8}"
    )
    for n_shards in SHARD_COUNTS:
        row = measure(model, n_shards, n_tags, epochs)
        results.append(row)
        print(
            f"{n_shards:>7} {row['save_s']:>8.3f} {row['restore_s']:>10.3f} "
            f"{row['reshard_s']:>10.3f} {row['bytes'] / 2**20:>8.2f} "
            f"{row['bytes_per_tag']:>8.1f}"
        )

    print(
        f"\n{'tags':>7} {'moved':>7} {'full_s':>8} {'delta_s':>8} "
        f"{'fullMiB':>8} {'dltMiB':>8} {'ratio':>7} {'chain_s':>8}"
    )
    for count in delta_tag_counts:
        row = measure_delta(build_model(count), count, DELTA_EPOCHS)
        results.append(row)
        print(
            f"{count:>7} {row['moved_fraction']:>7.1%} {row['full_save_s']:>8.3f} "
            f"{row['delta_save_s']:>8.3f} {row['full_bytes'] / 2**20:>8.2f} "
            f"{row['delta_bytes'] / 2**20:>8.2f} {row['bytes_ratio']:>6.1f}x "
            f"{row['chain_restore_s']:>8.3f}"
        )

    payload = {
        "benchmark": "checkpoint",
        "description": (
            "Durable-state costs at scale.  Full rows: coordinated full "
            "checkpoint save, exact restore, and elastic re-shard to "
            f"{RESHARD_TO} shards at {n_tags} active tags (100 particles/"
            "object, 100 reader particles/shard); bytes is the on-disk "
            "checkpoint directory, live_belief_bytes the arenas' accounted "
            "row bytes.  Delta rows: differential vs full checkpoint of the "
            "same warm state (spatial index on, moved_fraction of the tags "
            "read since the base) — delta saves ship dirty blocks only, "
            "bytes_ratio = full_bytes / delta_bytes, chain_restore_s "
            "materializes base + delta."
        ),
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    # Check against the recorded baseline BEFORE overwriting it, so a CI
    # run may point --check at the committed BENCH_checkpoint.json.
    failed = args.check is not None and not _check_regression(
        results,
        args.check,
        args.check_tolerance,
        args.check_min_ratio,
        args.check_min_speedup,
    )
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
