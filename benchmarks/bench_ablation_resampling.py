"""Ablation: reader-resampling feedback (DESIGN.md Section 3.4).

The paper "instrument[s] resampling to favor reader particles that are
associated with good object particles" but omits the algorithm.  This
ablation measures our reconstruction: factored filtering with and without
the object-likelihood feedback term, under reader-location noise where the
reader posterior actually matters.
"""

import pytest
from dataclasses import replace

from conftest import one_shot, record_report
from repro.config import InferenceConfig
from repro.eval import run_factored
from repro.eval.report import format_table
from repro.simulation.layout import LayoutConfig
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

BASE = InferenceConfig(reader_particles=120, object_particles=300, seed=0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_reader_feedback(benchmark, truth_projection):
    sim = WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(n_objects=12, n_shelf_tags=4),
            location_bias=(0.0, 0.4, 0.0),
            location_sigma=(0.05, 0.2, 0.0),
            seed=901,
        )
    )
    trace = sim.generate()

    def run(feedback: bool, seed: int):
        model = sim.world_model(sensor_params=truth_projection[1.0])
        config = replace(BASE, reader_feedback=feedback, seed=seed)
        return run_factored(trace, model, config).error.xy

    def sweep():
        seeds = (0, 1, 2)
        with_fb = [run(True, s) for s in seeds]
        without_fb = [run(False, s) for s in seeds]
        return with_fb, without_fb

    with_fb, without_fb = one_shot(benchmark, sweep)
    mean_with = sum(with_fb) / len(with_fb)
    mean_without = sum(without_fb) / len(without_fb)
    report = format_table(
        ["variant", "XY error (ft), mean of 3 seeds"],
        [
            ["feedback ON (paper's intent)", mean_with],
            ["feedback OFF", mean_without],
        ],
        title="Ablation: object-likelihood feedback in reader resampling",
    )
    record_report("ablation_resampling", report)

    # Feedback must not hurt; under location noise it typically helps.
    assert mean_with <= mean_without * 1.25
