"""Geometric primitives: points, boxes, cones and shelf regions.

This package is the lowest layer of the library; everything above it (the
probabilistic models, the spatial index, the simulator) speaks in terms of
these types.
"""

from .box import Box, iter_pairs_intersecting, union_all
from .cone import Cone
from .shapes import ShelfRegion, ShelfSet
from .vec import (
    as_point,
    as_points,
    bearing,
    bearings,
    distance,
    distances,
    distances_and_bearings,
    heading_vector,
    pairwise_distances_and_bearings,
    planar_distance,
    wrap_angle,
)

__all__ = [
    "Box",
    "Cone",
    "ShelfRegion",
    "ShelfSet",
    "as_point",
    "as_points",
    "bearing",
    "bearings",
    "distance",
    "distances",
    "distances_and_bearings",
    "heading_vector",
    "iter_pairs_intersecting",
    "pairwise_distances_and_bearings",
    "planar_distance",
    "union_all",
    "wrap_angle",
]
