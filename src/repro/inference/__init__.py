"""Inference engines (Section IV): naive and factored particle filters,
the contiguous belief arena backing them, spatial-index active-set
selection, belief compression, and the cleaning pipeline that turns raw
epochs into location events."""

from .arena import BeliefArena, segment_gather_indices
from .base import (
    effective_sample_size,
    normalize_log_weights,
    resample_log_weights,
    segmented_ess,
    segmented_normalize,
    systematic_resample,
    weighted_mean_cov,
)
from .compression import (
    CompressionCandidate,
    GaussianBelief,
    compress,
    compression_error,
    segmented_compression_errors,
    select_for_compression,
)
from .estimates import LocationEstimate
from .factored import FactoredParticleFilter, ObjectBelief
from .naive import NaiveParticleFilter
from .pipeline import CleaningPipeline, InferenceEngine
from .spatial import ActiveSetSelector

__all__ = [
    "ActiveSetSelector",
    "BeliefArena",
    "CleaningPipeline",
    "CompressionCandidate",
    "FactoredParticleFilter",
    "GaussianBelief",
    "InferenceEngine",
    "LocationEstimate",
    "NaiveParticleFilter",
    "ObjectBelief",
    "compress",
    "compression_error",
    "effective_sample_size",
    "normalize_log_weights",
    "resample_log_weights",
    "segment_gather_indices",
    "segmented_compression_errors",
    "segmented_ess",
    "segmented_normalize",
    "select_for_compression",
    "systematic_resample",
    "weighted_mean_cov",
]
