"""Socket shard-transport tests: localhost-TCP parity and live re-sharding.

The contracts under test:

* the remote executor at an equal shard count is **byte-identical** to the
  serial executor — the wire codec (struct-packed step/events frames) is an
  exact encoding, not an approximation;
* a dead shard host heals exactly like a dead local worker: the supervisor
  respawns the proxy (reconnecting to a fresh host on the same endpoint),
  restores from the checkpoint, replays the journal, and the merged output
  stays byte-identical;
* a live re-shard (``ShardedRuntime.reshard``) migrates a running N-shard
  layout to M shards at an epoch boundary and continues **bitwise-identical
  to a stop-the-world checkpoint → re-sharded restore** at the same epoch —
  including the spatial-index region sets, which ride along with their
  objects.
"""

import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
    SupervisorConfig,
)
from repro.errors import WorkerError
from repro.runtime import ShardedRuntime
from repro.runtime.transport import (
    ShardHostServer,
    decode_payload,
    encode_message,
    parse_endpoint,
)
from repro.state import reshard_states, restore_runtime

POLICY = OutputPolicyConfig(delay_s=20.0)


@pytest.fixture(scope="module")
def scenario():
    from repro.simulation.layout import LayoutConfig
    from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

    simulator = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=6, n_shelf_tags=3), seed=11)
    )
    trace = simulator.generate()
    config = InferenceConfig(reader_particles=50, object_particles=100, seed=7)
    return simulator.world_model(), trace, config


@contextmanager
def shard_host(port=0):
    server = ShardHostServer(port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(5.0)


def remote_config(server, n_shards, supervisor=None, **extra):
    return RuntimeConfig(
        n_shards=n_shards,
        executor="remote",
        shard_hosts=(f"127.0.0.1:{server.port}",),
        supervisor=supervisor,
        **extra,
    )


def serial_events(model, trace, config, n_shards):
    return (
        ShardedRuntime(model, config, RuntimeConfig(n_shards=n_shards), POLICY)
        .run(trace.epochs())
        .events
    )


def assert_events_equal(events, reference):
    assert len(events) == len(reference)
    for ours, ref in zip(events, reference):
        assert ours.time == ref.time and ours.tag == ref.tag
        np.testing.assert_array_equal(ours.position, ref.position)
        assert ours.statistics == ref.statistics


class TestWireCodec:
    def test_step_frame_roundtrip_is_exact(self):
        message = (
            "step",
            12.5,
            (1.25, -3.5, 0.0),
            0.7853981633974483,
            [3, 1, 4, 1, 5],
            [9, 2, 6],
        )
        frame = encode_message(message)
        kind, payload = frame[4], frame[5:]
        decoded = decode_payload(kind, payload)
        assert decoded[0] == "step"
        assert decoded[1] == message[1]
        assert decoded[2] == message[2]
        assert decoded[3] == message[3]
        assert list(decoded[4]) == message[4]
        assert list(decoded[5]) == message[5]

    def test_step_frame_dropout_epoch(self):
        """Handheld readers / positioning dropouts: no position, no
        heading — both must round-trip as None, not as the origin."""
        frame = encode_message(("step", 1.0, None, None, [], []))
        decoded = decode_payload(frame[4], frame[5:])
        assert decoded[2] is None and decoded[3] is None
        assert decoded[4] == [] and decoded[5] == []

    def test_events_frame_preserves_flat_covariance(self):
        """LocationStatistics.covariance is a flat row-major 9-tuple on
        the pipe; the socket frame must reproduce exactly that shape."""
        covariance = tuple(float(v) for v in range(9))
        row = (30.0, 4, np.array([1.0, 2.0, 3.0]), (covariance, 0.25, 17))
        frame = encode_message(("events", [row, (31.0, 5, np.zeros(3), None)], "seg"))
        kind, payload = frame[4], frame[5:]
        op, rows, segment = decode_payload(kind, payload)
        assert op == "events" and segment is None
        time, number, position, out_stats = rows[0]
        assert time == 30.0 and number == 4
        np.testing.assert_array_equal(position, row[2])
        assert out_stats[0] == covariance
        assert out_stats[1] == 0.25 and out_stats[2] == 17
        assert rows[1][3] is None

    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.7:9200") == ("10.0.0.7", 9200)


class TestRemoteParity:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_remote_executor_bitwise_vs_serial(self, scenario, n_shards):
        model, trace, config = scenario
        reference = serial_events(model, trace, config, n_shards)
        with shard_host() as server:
            runtime = ShardedRuntime(
                model, config, remote_config(server, n_shards), POLICY
            )
            try:
                runtime.run(trace.epochs())
            finally:
                runtime.abort()
        assert_events_equal(runtime.sink.events, reference)

    def test_remote_belief_fetch_matches_local_arena(self, scenario):
        """Explicit belief-fetch replaces shared-memory reads off-host: the
        fetched particle blocks must be the worker's arena verbatim."""
        model, trace, config = scenario
        epochs = trace.epochs()
        serial = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        for epoch in epochs[:10]:
            serial.step(epoch)
        with shard_host() as server:
            runtime = ShardedRuntime(model, config, remote_config(server, 2), POLICY)
            try:
                for epoch in epochs[:10]:
                    runtime.step(epoch)
                for local, remote in zip(serial.shards, runtime.shards):
                    view = remote.arena_view()
                    local_arena = local.engine.arena
                    assert view.object_ids() == local_arena.object_ids()
                    for number in view.object_ids():
                        np.testing.assert_array_equal(
                            view.positions(number), local_arena.positions(number)
                        )
                        np.testing.assert_array_equal(
                            view.parents(number), local_arena.parents(number)
                        )
                        np.testing.assert_array_equal(
                            view.log_weights(number),
                            local_arena.log_weights(number),
                        )
            finally:
                runtime.abort()
        serial.abort()

    def test_remote_stats_report_wire_bytes(self, scenario):
        model, trace, config = scenario
        with shard_host() as server:
            runtime = ShardedRuntime(model, config, remote_config(server, 2), POLICY)
            try:
                for epoch in trace.epochs()[:5]:
                    runtime.step(epoch)
                rows = runtime.shard_stats()
            finally:
                runtime.abort()
        for row in rows:
            assert row["wire_bytes_sent"] > 0
            assert row["wire_bytes_recv"] > 0

    def test_unreachable_host_raises_worker_error(self, scenario):
        model, trace, config = scenario
        server = ShardHostServer()
        port = server.port
        server.shutdown()  # nothing listens here any more
        config_remote = RuntimeConfig(
            n_shards=2, executor="remote", shard_hosts=(f"127.0.0.1:{port}",)
        )
        with pytest.raises(WorkerError, match="cannot reach shard host"):
            ShardedRuntime(model, config, config_remote, POLICY)


class TestSupervisedRecovery:
    def test_dead_shard_host_heals_like_local_death(self, scenario, tmp_path):
        """Checkpoint, kill the shard host mid-run, bring a fresh host up
        on the same port: the supervisor reconnects, restores from the
        checkpoint, replays the journal, and the output is byte-identical."""
        model, trace, config = scenario
        reference = serial_events(model, trace, config, 2)
        supervisor = SupervisorConfig(backoff_base_s=0.05, op_timeout_s=30.0)
        epochs = trace.epochs()
        with shard_host() as first:
            port = first.port
            runtime = ShardedRuntime(
                model,
                config,
                remote_config(
                    first,
                    2,
                    supervisor=supervisor,
                    checkpoint_every_s=6.0,
                    checkpoint_dir=str(tmp_path),
                ),
                POLICY,
            )
            try:
                for epoch in epochs[: len(epochs) // 2]:
                    runtime.step(epoch)
                # The whole host dies: every session is torn down, both
                # worker sockets go EOF.
                first.shutdown()
                with shard_host(port=port) as second:  # noqa: F841
                    for epoch in epochs[len(epochs) // 2 :]:
                        runtime.step(epoch)
                    runtime.finish()
                    stats = runtime.supervisor_stats()
                    assert stats["restarts"] >= 2  # both shards died
            finally:
                runtime.abort()
        assert_events_equal(runtime.sink.events, reference)


class TestLiveReshard:
    @pytest.mark.parametrize("executor", ["serial", "remote"])
    def test_live_reshard_matches_stop_the_world(
        self, scenario, tmp_path, executor
    ):
        """Live 2→4 at an epoch boundary == checkpoint at that epoch +
        re-sharded restore, bit for bit — on both in-process and socket
        transports."""
        model, trace, config = scenario
        epochs = trace.epochs()
        cut = len(epochs) // 2

        reference = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        for epoch in epochs[:cut]:
            reference.step(epoch)
        reference.checkpoint(str(tmp_path / "cut"))
        reference.abort()
        restored, _ = restore_runtime(
            str(tmp_path / "cut"), model, RuntimeConfig(n_shards=4)
        )
        for epoch in epochs[cut:]:
            restored.step(epoch)
        restored.finish()
        expected_post = restored.sink.events

        def run_live(runtime_config):
            runtime = ShardedRuntime(model, config, runtime_config, POLICY)
            try:
                for epoch in epochs[:cut]:
                    runtime.step(epoch)
                emitted_before = len(runtime.sink.events)
                runtime.reshard(4)
                assert runtime.n_shards == 4
                assert len(runtime.shards) == 4
                assert runtime.reshards_total == 1
                assert runtime.last_reshard_ms is not None
                for epoch in epochs[cut:]:
                    runtime.step(epoch)
                runtime.finish()
            finally:
                runtime.abort()
            return runtime, runtime.sink.events[emitted_before:]

        if executor == "serial":
            runtime, live_post = run_live(RuntimeConfig(n_shards=2))
        else:
            with shard_host() as server:
                runtime, live_post = run_live(remote_config(server, 2))
        assert runtime.migrated_objects_total > 0
        assert_events_equal(live_post, expected_post)

    def test_reshard_same_layout_is_noop(self, scenario):
        model, trace, config = scenario
        runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        for epoch in trace.epochs()[:5]:
            runtime.step(epoch)
        shards_before = runtime.shards
        runtime.reshard(2)
        assert runtime.shards is shards_before
        assert runtime.reshards_total == 0
        runtime.abort()

    def test_reshard_writes_fresh_checkpoint_baseline(self, scenario, tmp_path):
        """With a checkpoint dir armed, the live re-shard lands a new
        checkpoint before ingest resumes — supervised recovery never sees
        the broken-journal gap."""
        from repro.state import latest_checkpoint, load_checkpoint

        model, trace, config = scenario
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(
                n_shards=2,
                executor="process",
                supervisor=SupervisorConfig(backoff_base_s=0.01),
                checkpoint_every_s=3600.0,  # periodic cadence never fires
                checkpoint_dir=str(tmp_path),
            ),
            POLICY,
        )
        try:
            epochs = trace.epochs()
            for epoch in epochs[:8]:
                runtime.step(epoch)
            runtime.reshard(3)
            manifest = load_checkpoint(latest_checkpoint(tmp_path))
            assert manifest.n_shards == 3
            assert manifest.epochs_processed == 8
            # The new baseline is immediately usable: kill a worker and the
            # supervisor recovers from it rather than escalating.
            runtime.shards[1].process.kill()
            runtime.shards[1].process.join(5.0)
            for epoch in epochs[8:12]:
                runtime.step(epoch)
            assert runtime.supervisor_stats()["restarts"] == 1
        finally:
            runtime.abort()

    def test_reshard_without_checkpoint_dir_breaks_journal(self, scenario):
        """No checkpoint dir: a worker death after a live re-shard has no
        baseline and must escalate loudly, not silently diverge."""
        model, trace, config = scenario
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(
                n_shards=2,
                executor="process",
                supervisor=SupervisorConfig(backoff_base_s=0.01),
            ),
            POLICY,
        )
        try:
            epochs = trace.epochs()
            for epoch in epochs[:6]:
                runtime.step(epoch)
            runtime.reshard(3)
            runtime.shards[0].process.kill()
            runtime.shards[0].process.join(5.0)
            with pytest.raises(WorkerError, match="beyond recovery"):
                for epoch in epochs[6:10]:
                    runtime.step(epoch)
        finally:
            runtime.abort()

    def test_reshard_invalid_count_rejected(self, scenario):
        from repro.errors import StateError

        model, trace, config = scenario
        runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        with pytest.raises(StateError):
            runtime.reshard(0)
        runtime.abort()


class TestSelectorMigration:
    def test_reshard_migrates_spatial_regions_with_objects(self):
        """The elastic N→M path must carry the spatial-index regions and
        their per-object attachments — an empty selector silently disables
        Case-2 negative evidence on every migrated shard."""
        from repro.runtime.router import EpochRouter
        from repro.simulation.layout import LayoutConfig
        from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

        simulator = WarehouseSimulator(
            WarehouseConfig(layout=LayoutConfig(n_objects=8, n_shelf_tags=3), seed=3)
        )
        trace = simulator.generate()
        config = InferenceConfig(
            reader_particles=40, object_particles=80, seed=5
        ).with_index()
        runtime = ShardedRuntime(
            simulator.world_model(), config, RuntimeConfig(n_shards=2), POLICY
        )
        for epoch in trace.epochs():
            runtime.step(epoch)
        old_states = [shard.snapshot("full") for shard in runtime.shards]
        old_selectors = [s["engine"]["selector"] for s in old_states]
        assert any(
            rec["objects"]
            for sel in old_selectors
            for rec in sel["index"]["regions"]
        ), "scenario never attached an object — test is vacuous"
        router = EpochRouter(3, "hash")
        new_states = reshard_states(
            old_states,
            router,
            3,
            config.seed,
            spatial_enabled=True,
            epochs_processed=runtime.epochs_processed,
        )
        runtime.abort()

        attachments = {}
        for sel in old_selectors:
            for rec in sel["index"]["regions"]:
                attachments.setdefault(rec["id"], set()).update(rec["objects"])
        for m, state in enumerate(new_states):
            selector = state["engine"]["selector"]
            assert selector is not None
            regions = selector["index"]["regions"]
            # Region geometry and order come from new shard m's *source*
            # frame, old shard (m * n_old) // n_new — geometry differs
            # slightly between old shards because each duplicates the
            # reader belief with its own RNG stream.
            source_regions = {
                rec["id"]: rec
                for rec in old_selectors[(m * 2) // 3]["index"]["regions"]
            }
            assert [r["id"] for r in regions] == list(source_regions)
            for rec in regions:
                src = source_regions[rec["id"]]
                assert rec["lo"] == src["lo"] and rec["hi"] == src["hi"]
                # Attachments are the union across every old shard,
                # re-filtered by the new router.
                expected = sorted(
                    n for n in attachments[rec["id"]] if router.shard_of(n) == m
                )
                assert rec["objects"] == expected
        # Nothing dropped: the union across new shards is the old union.
        migrated = {
            n
            for state in new_states
            for rec in state["engine"]["selector"]["index"]["regions"]
            for n in rec["objects"]
        }
        original = {n for ids in attachments.values() for n in ids}
        assert migrated == original


class TestConfig:
    def test_remote_requires_shard_hosts(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="shard_hosts"):
            RuntimeConfig(n_shards=2, executor="remote")

    def test_shard_hosts_require_remote_executor(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="remote"):
            RuntimeConfig(n_shards=2, shard_hosts=("127.0.0.1:9000",))

    @pytest.mark.parametrize("endpoint", ["nohost", "host:", "host:0", "host:99999"])
    def test_bad_endpoints_rejected(self, endpoint):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RuntimeConfig(n_shards=1, executor="remote", shard_hosts=(endpoint,))

    def test_heartbeat_knobs_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="heartbeat_interval_s"):
            SupervisorConfig(heartbeat_interval_s=0.0)
        with pytest.raises(ConfigurationError, match="heartbeat_grace_s"):
            SupervisorConfig(heartbeat_interval_s=1.0, heartbeat_grace_s=0.5)

    def test_heartbeat_knobs_reach_workers(self, scenario):
        model, trace, config = scenario
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(
                n_shards=2,
                executor="process",
                supervisor=SupervisorConfig(
                    heartbeat_interval_s=0.1, heartbeat_grace_s=4.0
                ),
            ),
            POLICY,
        )
        try:
            for proxy in runtime.shards:
                assert proxy.heartbeat_interval_s == 0.1
                assert proxy.heartbeat_grace_s == 4.0
        finally:
            runtime.abort()
