"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's Section V
and prints it (plus writes it to ``benchmarks/results/``), so the output can
be read side-by-side with the paper.  Timings use pytest-benchmark in
single-shot pedantic mode — these are experiments, not microbenchmarks.

Scale: the paper's largest runs (20,000 objects, 100,000 joint particles)
are CI-hostile; benchmarks default to reduced sizes that preserve the
*shape* of every result, and honour ``REPRO_BENCH_SCALE`` (float >= 1.0) to
approach paper scale, e.g.::

    REPRO_BENCH_SCALE=8 pytest benchmarks/bench_fig5i_scalability_error.py --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.learning.logistic import field_of_truth_sensor, fit_sensor_to_field
from repro.models.sensor import SensorParams
from repro.simulation.truth_sensor import ConeTruthSensor

#: Collected (name, table) pairs printed in the terminal summary.
_REPORTS: List = []

RESULTS_DIR = Path(__file__).parent / "results"


def record_report(name: str, text: str) -> None:
    """Register a table for the end-of-run summary and persist it."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def scale() -> float:
    """Global benchmark scale factor (1.0 = CI-sized)."""
    return max(1.0, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))


@pytest.fixture(scope="session")
def truth_projection() -> Dict[float, SensorParams]:
    """Logistic projections of cone fields keyed by RR_major.

    Plays the paper's "true sensor model": the best in-family approximation
    of the simulator's actual (cone) field.
    """
    out: Dict[float, SensorParams] = {}
    for rr in (1.0, 0.9, 0.8, 0.7, 0.6, 0.5):
        cone = ConeTruthSensor(rr_major=rr)
        fit = fit_sensor_to_field(field_of_truth_sensor(cone), max_distance=4.5)
        out[rr] = fit.sensor_params
    return out


def one_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
