"""Restore: rebuild a live :class:`ShardedRuntime` from a checkpoint.

Two restore modes, chosen by comparing the checkpoint's shard layout with
the requested one:

**Exact restore** — same shard count and partitioner.  Every shard's state
tree is applied verbatim: RNG bit-generator states, reader beliefs, arena
blocks, visit bookkeeping.  The resumed run is *bitwise identical* to an
uninterrupted run — same events, same timestamps, same positions — because
every source of randomness and every piece of mutable state crosses the
checkpoint boundary intact (the arena's parent remapping was made
hole-layout-independent for exactly this reason).

**Elastic re-shard** — different shard count (or partitioner).  Per-object
state (particle blocks, belief metadata, visit bookkeeping) is repartitioned
across the new shards with the new runtime's own partitioner, so a run can
scale from N to M shards *without replaying from epoch 0*.  Three pieces of
state cannot migrate exactly and are handled explicitly:

* **Reader beliefs** are duplicated per shard by design (each shard tracks
  the reader from the same broadcast evidence), so new shard ``m`` inherits
  the posterior of source shard ``m * N // M``.  Migrated objects' parent
  pointers then index a *different but equally valid* reader posterior —
  post-resampling reader particles are approximately i.i.d. posterior
  draws, so re-pointing is distributionally consistent (the same argument
  the filter itself uses for dropped parents after a reader resample).
* **RNG streams** are re-derived deterministically from the root seed, the
  new shard index, and the resume offset; splicing old bit-generator
  streams across a changed shard layout would correlate shards.
* **Spatial-index regions** (when enabled) migrate with the objects they
  cover.  Region geometry and ids are identical across the old shards —
  every shard records regions from the same broadcast reader poses under
  the same config — so new shard ``m`` takes the region list of its reader
  donor shard and re-attaches, per region id, the union of every old
  shard's covered objects filtered to ``m``'s ownership.  Without this the
  index restarted empty and every layout change paid a Case-2 warm-up
  window while regions re-recorded.

The re-shard path is also the live-migration engine:
:meth:`ShardedRuntime.reshard` snapshots the running shards and feeds the
trees through :func:`reshard_states` at an epoch boundary — same
repartitioning, no stop.

Consequently an exact restore is bitwise; a re-shard is exact on event
times and tags (the output policy's clock is deterministic) and accurate on
positions to the same tolerance as running sharded vs. unsharded.

Both modes apply unchanged to *differential* checkpoints:
:func:`~repro.state.checkpoint.load_checkpoint` materializes a delta chain
(full base + dirty-block deltas, replayed in order with per-link integrity
and serial-continuity checks) into state trees bit-for-bit identical to a
full snapshot's before this module ever sees them, so restoring the leaf of
a delta chain is exactly as bitwise as restoring a full checkpoint taken at
the same epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import RuntimeConfig
from ..errors import StateError
from ..models.joint import RFIDWorldModel
from ..runtime import EventBus, ShardedRuntime
from ..streams.sinks import EventSink
from .checkpoint import CheckpointManifest, config_hash, load_checkpoint

#: Fallback selector snapshot for re-sharded engines whose source shard
#: carries no selector state: structurally valid, semantically empty.
_EMPTY_SELECTOR = {
    "index": {"next_id": 0, "regions": []},
    "last_region_id": None,
    "last_center": None,
}


def restore_runtime(
    path,
    model: RFIDWorldModel,
    runtime_config: Optional[RuntimeConfig] = None,
    sink: Optional[EventSink] = None,
    bus: Optional[EventBus] = None,
    verify: bool = True,
    engine_factory=None,
) -> Tuple[ShardedRuntime, CheckpointManifest]:
    """Rebuild a runtime from a checkpoint directory and prime it to resume.

    Parameters
    ----------
    path:
        Checkpoint directory written by :func:`repro.state.save_checkpoint`
        (or by the runtime's periodic checkpointing).
    model:
        The world model — models are code + fitted parameters, not runtime
        state, so the caller re-derives them the same way the original run
        did (e.g. from the trace's calibration data).
    runtime_config:
        Target shard layout.  ``None`` restores the recorded layout
        exactly; a different ``n_shards`` (or partitioner) triggers the
        elastic re-shard path.  The *executor* is a free choice either way:
        a checkpoint taken under the process executor restores into serial
        shards and vice versa (state trees cross the worker pipe on the
        process path), and an exact restore stays bitwise regardless.
    verify:
        Check shard-file checksums against the manifest before applying.
    engine_factory:
        Per-shard engine builder, forwarded to :class:`ShardedRuntime`.
        Required when the checkpoint was taken under a non-default engine:
        shard state trees carry an engine-kind marker, and naive-engine
        state only restores into naive shards.

    Returns the primed runtime and the parsed manifest; resume by feeding
    ``trace.epochs(start=manifest.epochs_processed)`` to ``runtime.run``.
    Checkpointed query-operator state is *not* applied here (the standing
    queries live outside the runtime): re-attach the engines, then call
    :func:`apply_query_states`.
    """
    manifest = load_checkpoint(path, verify=verify)
    digest = config_hash(manifest.config, manifest.policy, manifest.initial_heading)
    if digest != manifest.config_digest:
        raise StateError(
            "checkpoint config hash does not match its own configuration "
            "payload — the manifest was modified after it was written"
        )
    kinds = {
        state["engine"].get("engine", "factored")
        for state in manifest.shard_states
    }
    if "naive" in kinds and engine_factory is None:
        raise StateError(
            "checkpoint holds naive-engine shard state; pass an "
            "engine_factory that builds NaiveParticleFilter shards"
        )
    target = runtime_config if runtime_config is not None else manifest.runtime
    runtime = ShardedRuntime(
        model,
        manifest.config,
        target,
        manifest.policy,
        sink=sink,
        bus=bus,
        initial_heading=manifest.initial_heading,
        engine_factory=engine_factory,
    )
    exact = (
        target.n_shards == manifest.n_shards
        and target.partitioner == manifest.runtime.partitioner
    )
    if exact:
        for shard, state in zip(runtime.shards, manifest.shard_states):
            shard.restore(state)
    else:
        _reshard(runtime, manifest)
    runtime.epochs_processed = manifest.epochs_processed
    runtime.bus.resume_from(manifest.bus_last_time)
    if exact and runtime.supervisor is not None:
        # The restored-from checkpoint is the supervisor's recovery
        # baseline until the runtime writes its own (elastic restores
        # cannot reuse per-shard states across a different layout).
        runtime.supervisor.note_checkpoint(path)
    return runtime, manifest


def apply_query_states(runtime: ShardedRuntime, manifest: CheckpointManifest) -> List[str]:
    """Restore checkpointed query-operator state into the engines attached
    to ``runtime`` (via :meth:`ShardedRuntime.attach_query_engine`, usually
    through ``QueryBridge(..., runtime=..., name=...)``).

    Every state recorded in the checkpoint must find its engine: a missing
    attachment would silently serve fresh-window answers that diverge from
    the pre-crash server, so it is an error, not a skip.  Engines attached
    under names the checkpoint does not know keep their fresh state (they
    are *new* standing queries).  Returns the names restored.
    """
    restored: List[str] = []
    for name, state in sorted(manifest.query_states.items()):
        engine = runtime.query_engines.get(name)
        if engine is None:
            raise StateError(
                f"checkpoint carries query-engine state {name!r} but no "
                "engine with that name is attached to the runtime; attach "
                "it before applying query states"
            )
        engine.restore_state(state)
        restored.append(name)
    return restored


# ---------------------------------------------------------------------------
# Elastic re-sharding
# ---------------------------------------------------------------------------
def _arena_blocks(
    arena_state: dict,
) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-object ``(positions, parents, log_weights)`` views into a
    snapshot's concatenated block arrays."""
    counts = np.asarray(arena_state["counts"], dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    positions = np.asarray(arena_state["positions"])
    parents = np.asarray(arena_state["parents"])
    log_weights = np.asarray(arena_state["log_weights"])
    blocks = {}
    for i, oid in enumerate(np.asarray(arena_state["ids"], dtype=np.int64)):
        block = slice(int(offsets[i]), int(offsets[i + 1]))
        blocks[int(oid)] = (positions[block], parents[block], log_weights[block])
    return blocks


def _belief_entries(engine_state: dict) -> List[dict]:
    """Flatten one engine snapshot into per-object records, preserving the
    belief dict's insertion order (it is semantically load-bearing)."""
    beliefs = engine_state["beliefs"]
    blocks = _arena_blocks(engine_state["arena"])
    ids = np.asarray(beliefs["ids"], dtype=np.int64)
    compressed = np.asarray(beliefs["compressed"], dtype=bool)
    # Budget columns default to "never parked" for pre-adaptive checkpoints.
    settled = np.asarray(
        beliefs.get("settled", np.zeros(ids.size, dtype=bool)), dtype=bool
    )
    budget_epoch = np.asarray(
        beliefs.get("budget_epoch", np.zeros(ids.size, dtype=np.int64)),
        dtype=np.int64,
    )
    entries = []
    for i, number in enumerate(ids):
        number = int(number)
        entry = {
            "number": number,
            "created": int(beliefs["created"][i]),
            "last_read": int(beliefs["last_read"][i]),
            "last_split": int(beliefs["last_split"][i]),
            "anchor": np.asarray(beliefs["anchors"][i], dtype=float),
            "compressed": bool(compressed[i]),
            "gauss_mean": np.asarray(beliefs["gauss_mean"][i], dtype=float),
            "gauss_cov": np.asarray(beliefs["gauss_cov"][i], dtype=float),
            "settled": bool(settled[i]),
            "budget_epoch": int(budget_epoch[i]),
            "block": None if compressed[i] else blocks.get(number),
        }
        if not entry["compressed"] and entry["block"] is None:
            raise StateError(f"belief {number} has no arena block in checkpoint")
        entries.append(entry)
    return entries


def _visit_entries(pipeline_state: dict) -> List[dict]:
    visits = pipeline_state["visits"]
    ids = np.asarray(visits["ids"], dtype=np.int64)
    has_pos = np.asarray(visits["has_pos"], dtype=bool)
    return [
        {
            "number": int(number),
            "entered": float(visits["entered"][i]),
            "last_read": float(visits["last_read"][i]),
            "emitted": bool(visits["emitted"][i]),
            "has_pos": bool(has_pos[i]),
            "pos": np.asarray(visits["pos"][i], dtype=float),
        }
        for i, number in enumerate(ids)
    ]


def _pack_beliefs(entries: List[dict]) -> Tuple[dict, dict]:
    """Reassemble per-object records into engine ``beliefs`` + ``arena``
    snapshot trees (the inverse of :func:`_belief_entries`)."""
    b = len(entries)
    beliefs = {
        "ids": np.asarray([e["number"] for e in entries], dtype=np.int64),
        "created": np.asarray([e["created"] for e in entries], dtype=np.int64),
        "last_read": np.asarray([e["last_read"] for e in entries], dtype=np.int64),
        "last_split": np.asarray([e["last_split"] for e in entries], dtype=np.int64),
        "anchors": (
            np.stack([e["anchor"] for e in entries])
            if entries
            else np.zeros((0, 3))
        ),
        "compressed": np.asarray([e["compressed"] for e in entries], dtype=bool),
        "gauss_mean": (
            np.stack([e["gauss_mean"] for e in entries])
            if entries
            else np.zeros((0, 3))
        ),
        "gauss_cov": (
            np.stack([e["gauss_cov"] for e in entries])
            if entries
            else np.zeros((0, 3, 3))
        ),
        "settled": np.asarray([e["settled"] for e in entries], dtype=bool),
        "budget_epoch": np.asarray(
            [e["budget_epoch"] for e in entries], dtype=np.int64
        ),
    }
    live = [e for e in entries if not e["compressed"]]
    # Empty fallbacks take the source blocks' dtype so a float32-arena
    # checkpoint re-shards without silently promoting to float64.
    float_dtype = live[0]["block"][0].dtype if live else np.float64
    arena = {
        "ids": np.asarray([e["number"] for e in live], dtype=np.int64),
        "counts": np.asarray(
            [e["block"][0].shape[0] for e in live], dtype=np.int64
        ),
        "positions": (
            np.concatenate([e["block"][0] for e in live])
            if live
            else np.zeros((0, 3), dtype=float_dtype)
        ),
        "parents": (
            np.concatenate([e["block"][1] for e in live])
            if live
            else np.zeros(0, dtype=np.int32)
        ),
        "log_weights": (
            np.concatenate([e["block"][2] for e in live])
            if live
            else np.zeros(0, dtype=float_dtype)
        ),
    }
    return beliefs, arena


def _reshard_rng_state(root_seed: int, shard_index: int, n_shards: int, offset: int) -> dict:
    """Fresh, deterministic bit-generator state for a re-sharded engine.

    Keyed on the resume offset too, so restoring the same checkpoint into
    the same layout twice is reproducible while a later checkpoint of the
    same run yields independent streams.
    """
    seq = np.random.SeedSequence(
        [int(root_seed), int(shard_index), int(n_shards), int(offset)]
    )
    return np.random.default_rng(seq).bit_generator.state


def _migrate_selector(
    shard_states: List[dict], source_index: int, router, m: int
) -> Optional[dict]:
    """Selector snapshot for new shard ``m``: regions travel with objects.

    Region geometry, recording order, ids, and the ``next_id`` watermark
    are shared across old shards (every shard records from the same
    broadcast reader poses under the same config), so the structural frame
    comes from the reader-donor shard; each region's covered-object set is
    the union over *all* old shards of that region id's objects, filtered
    to the objects shard ``m`` now owns.
    """
    source = shard_states[source_index]["engine"].get("selector")
    if source is None:
        return dict(_EMPTY_SELECTOR)
    # Union of covered objects per region id across every old shard.
    objects_by_region: Dict[int, set] = {}
    next_id = 0
    for state in shard_states:
        selector = state["engine"].get("selector")
        if selector is None:
            continue
        next_id = max(next_id, int(selector["index"]["next_id"]))
        for region in selector["index"]["regions"]:
            objects_by_region.setdefault(int(region["id"]), set()).update(
                int(number) for number in region["objects"]
            )
    regions = [
        {
            "id": int(region["id"]),
            "lo": region["lo"],
            "hi": region["hi"],
            "objects": sorted(
                number
                for number in objects_by_region.get(int(region["id"]), ())
                if router.shard_of(number) == m
            ),
        }
        for region in source["index"]["regions"]
    ]
    return {
        "index": {"next_id": next_id, "regions": regions},
        "last_region_id": source["last_region_id"],
        "last_center": source["last_center"],
    }


def reshard_states(
    shard_states: List[dict],
    router,
    n_new: int,
    root_seed: int,
    spatial_enabled: bool,
    epochs_processed: int,
) -> List[dict]:
    """Repartition N materialized shard state trees onto M shards.

    The core of the elastic restore path, factored out so
    :meth:`ShardedRuntime.reshard` can migrate a *running* runtime's state
    through the identical transformation (snapshot → repartition → restore)
    at an epoch boundary.  Returns one ``{"engine", "pipeline"}`` tree per
    new shard, ready for ``shard.restore``.
    """
    n_old = len(shard_states)
    for state in shard_states:
        if state["engine"].get("engine") != "factored":
            raise StateError("elastic re-shard supports the factored engine only")

    # Per-object state from every old shard, tagged with its origin so the
    # merged order is deterministic: old shard index, then original order.
    beliefs_by_new: List[List[dict]] = [[] for _ in range(n_new)]
    visits_by_new: List[List[dict]] = [[] for _ in range(n_new)]
    emitted_by_new: List[set] = [set() for _ in range(n_new)]
    for state in shard_states:
        for entry in _belief_entries(state["engine"]):
            beliefs_by_new[router.shard_of(entry["number"])].append(entry)
        for visit in _visit_entries(state["pipeline"]):
            visits_by_new[router.shard_of(visit["number"])].append(visit)
        for number in np.asarray(state["pipeline"]["emitted_ever"]):
            emitted_by_new[router.shard_of(int(number))].add(int(number))

    out: List[dict] = []
    for m in range(n_new):
        source_index = (m * n_old) // n_new
        source = shard_states[source_index]
        engine_src = source["engine"]
        beliefs, arena = _pack_beliefs(beliefs_by_new[m])
        engine_state = {
            "engine": "factored",
            "rng_state": _reshard_rng_state(
                root_seed, m, n_new, epochs_processed
            ),
            "epoch_index": engine_src["epoch_index"],
            "active_count": len(beliefs_by_new[m]),
            "stats": dict(engine_src["stats"]),
            "arena_stats": {"grows": 0, "compactions": 0},
            "last_reported": engine_src["last_reported"],
            "last_reported_epoch": engine_src["last_reported_epoch"],
            "reader": engine_src["reader"],
            "arena": arena,
            "beliefs": beliefs,
            "selector": (
                _migrate_selector(shard_states, source_index, router, m)
                if spatial_enabled
                else None
            ),
        }
        entries = visits_by_new[m]
        pipeline_state = {
            "visits": {
                "ids": np.asarray([v["number"] for v in entries], dtype=np.int64),
                "entered": np.asarray([v["entered"] for v in entries]),
                "last_read": np.asarray([v["last_read"] for v in entries]),
                "emitted": np.asarray([v["emitted"] for v in entries], dtype=bool),
                "has_pos": np.asarray([v["has_pos"] for v in entries], dtype=bool),
                "pos": (
                    np.stack([v["pos"] for v in entries])
                    if entries
                    else np.zeros((0, 3))
                ),
            },
            "emitted_ever": np.asarray(sorted(emitted_by_new[m]), dtype=np.int64),
            "last_epoch_time": source["pipeline"]["last_epoch_time"],
        }
        out.append({"engine": engine_state, "pipeline": pipeline_state})
    return out


def _reshard(runtime: ShardedRuntime, manifest: CheckpointManifest) -> None:
    """Repartition N-shard checkpoint state onto the runtime's M shards."""
    states = reshard_states(
        manifest.shard_states,
        runtime.router,
        runtime.n_shards,
        manifest.config.seed,
        manifest.config.spatial_index.enabled,
        manifest.epochs_processed,
    )
    for shard, state in zip(runtime.shards, states):
        shard.restore(state)
