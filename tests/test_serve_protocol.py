"""Wire-protocol tests: framing, round trips, and malformed input."""

import struct

import pytest

from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.protocol import Frame, FrameDecoder, decode_frames
from repro.streams.records import ReaderLocationReport, TagId, TagReading


class TestRoundTrips:
    def test_reading(self):
        reading = TagReading(12.5, TagId.object(17))
        (frame,) = decode_frames(protocol.encode_reading(9, reading))
        assert frame.kind == protocol.READING
        assert frame.seq == 9
        assert frame.data == reading

    def test_shelf_reading(self):
        reading = TagReading(3.0, TagId.shelf(4))
        (frame,) = decode_frames(protocol.encode_reading(1, reading))
        assert frame.data.tag.is_shelf

    def test_report_with_heading(self):
        report = ReaderLocationReport(7.0, (1.0, 2.0, 3.0), heading=0.75)
        (frame,) = decode_frames(protocol.encode_report(4, report))
        assert frame.seq == 4
        assert frame.data.position == (1.0, 2.0, 3.0)
        assert frame.data.heading == pytest.approx(0.75)

    def test_report_without_heading(self):
        report = ReaderLocationReport(7.0, (1.0, 2.0, 0.0))
        (frame,) = decode_frames(protocol.encode_report(4, report))
        assert frame.data.heading is None

    def test_hello_and_ack(self):
        (hello,) = decode_frames(
            protocol.encode_hello("source", source="s0", last_seq=12)
        )
        assert hello.data == {"role": "source", "source": "s0", "last_seq": 12}
        (ack,) = decode_frames(protocol.encode_hello_ack(resume_seq=12, credit=64))
        assert ack.data == {"resume_seq": 12, "credit": 64}

    def test_flow_control(self):
        (credit,) = decode_frames(protocol.encode_credit(128))
        assert (credit.kind, credit.data) == (protocol.CREDIT, 128)
        (pause,) = decode_frames(protocol.encode_pause())
        assert pause.kind == protocol.PAUSE
        (resume,) = decode_frames(protocol.encode_resume())
        assert resume.kind == protocol.RESUME

    def test_emit_and_ack(self):
        line = b'{"offset":3,"query":"q"}'
        (emit,) = decode_frames(protocol.encode_emit(3, line))
        assert (emit.kind, emit.data, emit.line) == (protocol.EMIT, 3, line)
        assert emit.degraded is False
        (ack,) = decode_frames(protocol.encode_ack(3))
        assert (ack.kind, ack.data) == (protocol.ACK, 3)

    def test_emit_degraded_flag_rides_the_wire_not_the_line(self):
        line = b'{"offset":7,"query":"q"}'
        (emit,) = decode_frames(protocol.encode_emit(7, line, degraded=True))
        assert emit.degraded is True
        # The flag never contaminates the durable log bytes.
        assert emit.line == line

    def test_stats_and_error(self):
        (req,) = decode_frames(protocol.encode_stats_request())
        assert req.kind == protocol.STATS
        (reply,) = decode_frames(protocol.encode_stats_reply({"epochs": 5}))
        assert reply.data == {"epochs": 5}
        (err,) = decode_frames(protocol.encode_error("boom"))
        assert err.data == {"error": "boom"}

    def test_source_end(self):
        (end,) = decode_frames(protocol.encode_source_end())
        assert end.kind == protocol.SOURCE_END

    def test_frame_name(self):
        assert Frame(protocol.READING).name == "READING"
        assert "99" in Frame(99).name


class TestIncrementalDecoding:
    def test_byte_at_a_time(self):
        payload = protocol.encode_reading(1, TagReading(1.0, TagId.object(2)))
        payload += protocol.encode_credit(5)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(payload)):
            frames.extend(decoder.feed_frames(payload[i : i + 1]))
        assert [f.kind for f in frames] == [protocol.READING, protocol.CREDIT]
        assert decoder.buffered == 0

    def test_partial_tail_stays_buffered(self):
        data = protocol.encode_credit(1) + protocol.encode_credit(2)[:3]
        decoder = FrameDecoder()
        frames = decoder.feed_frames(data)
        assert [f.data for f in frames] == [1]
        assert decoder.buffered == 3

    def test_many_frames_one_chunk(self):
        chunk = b"".join(protocol.encode_credit(i) for i in range(50))
        assert [f.data for f in decode_frames(chunk)] == list(range(50))


class TestMalformedInput:
    def test_zero_length_frame(self):
        with pytest.raises(ServeError, match="zero-length"):
            decode_frames(struct.pack("!I", 0))

    def test_oversized_frame(self):
        data = struct.pack("!I", 1 << 21) + b"\x03"
        with pytest.raises(ServeError, match="exceeds"):
            FrameDecoder(max_frame_bytes=1 << 20).feed_frames(data)

    def test_unknown_frame_type(self):
        with pytest.raises(ServeError, match="unknown frame type"):
            decode_frames(struct.pack("!I", 1) + bytes([200]))

    def test_truncated_struct_payload(self):
        with pytest.raises(ServeError, match="malformed"):
            decode_frames(struct.pack("!I", 4) + bytes([protocol.READING]) + b"abc")

    def test_bad_json_payload(self):
        bad = b"not json"
        data = struct.pack("!I", len(bad) + 1) + bytes([protocol.HELLO]) + bad
        with pytest.raises(ServeError, match="malformed"):
            decode_frames(data)

    def test_non_object_json_payload(self):
        bad = b"[1, 2]"
        data = struct.pack("!I", len(bad) + 1) + bytes([protocol.HELLO]) + bad
        with pytest.raises(ServeError, match="not an object"):
            decode_frames(data)

    def test_payload_on_empty_frame(self):
        data = struct.pack("!I", 2) + bytes([protocol.PAUSE]) + b"x"
        with pytest.raises(ServeError, match="carries a payload"):
            decode_frames(data)

    def test_unknown_tag_kind_code(self):
        payload = struct.pack("!QdBI", 1, 0.0, 9, 1)
        data = struct.pack("!I", len(payload) + 1) + bytes([protocol.READING])
        with pytest.raises(ServeError, match="tag kind"):
            decode_frames(data + payload)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ServeError, match="trailing"):
            decode_frames(protocol.encode_credit(1) + b"\x00")
