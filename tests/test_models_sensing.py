"""Tests for the reader location sensing model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.sensing import LocationSensingModel, SensingNoiseParams


class TestParams:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            SensingNoiseParams(sigma=(0.1, -0.1, 0.0))

    def test_rejects_nonfinite_mean(self):
        with pytest.raises(ConfigurationError):
            SensingNoiseParams(mean=(float("nan"), 0.0, 0.0))


class TestObserve:
    def test_bias_applied(self, rng):
        model = LocationSensingModel(
            SensingNoiseParams(mean=(0.0, 0.5, 0.0), sigma=(0.01, 0.01, 0.0))
        )
        true = np.array([1.0, 2.0, 0.0])
        reports = np.stack([model.observe(true, rng) for _ in range(2000)])
        assert reports[:, 1].mean() == pytest.approx(2.5, abs=0.01)
        assert reports[:, 0].mean() == pytest.approx(1.0, abs=0.01)


class TestLogLikelihood:
    def test_prefers_consistent_hypotheses(self):
        model = LocationSensingModel(
            SensingNoiseParams(mean=(0.0, 0.0, 0.0), sigma=(0.1, 0.1, 0.0))
        )
        reported = np.array([0.0, 1.0, 0.0])
        hypotheses = np.array([[0.0, 1.0, 0.0], [0.0, 2.0, 0.0], [0.5, 1.0, 0.0]])
        ll = model.log_likelihood(reported, hypotheses)
        assert ll[0] > ll[1]
        assert ll[0] > ll[2]

    def test_bias_shifts_peak(self):
        # With mean (0, +1, 0), truth = reported - bias is most likely.
        model = LocationSensingModel(
            SensingNoiseParams(mean=(0.0, 1.0, 0.0), sigma=(0.1, 0.1, 0.0))
        )
        reported = np.array([0.0, 3.0, 0.0])
        hypotheses = np.array([[0.0, 2.0, 0.0], [0.0, 3.0, 0.0]])
        ll = model.log_likelihood(reported, hypotheses)
        assert ll[0] > ll[1]

    def test_degenerate_z_is_ignored(self):
        model = LocationSensingModel(
            SensingNoiseParams(sigma=(0.1, 0.1, 0.0))
        )
        reported = np.array([0.0, 0.0, 0.0])
        hypotheses = np.zeros((4, 3))
        ll = model.log_likelihood(reported, hypotheses)
        assert np.isfinite(ll).all()
        # All identical hypotheses get identical likelihoods.
        assert np.allclose(ll, ll[0])

    def test_corrected_subtracts_bias(self):
        model = LocationSensingModel(
            SensingNoiseParams(mean=(0.2, -0.3, 0.0), sigma=(0.1, 0.1, 0.0))
        )
        out = model.corrected(np.array([1.0, 1.0, 0.0]))
        assert out.tolist() == pytest.approx([0.8, 1.3, 0.0])
