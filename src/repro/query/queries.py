"""The paper's two example queries (Section II-B), pre-built.

Query 1 — location updates:

    Select Istream(E.tag_id, E.(x, y, z))
    From EventStream E [Partition By tag_id Row 1]

Query 2 — fire-code violations ("display of solid merchandise shall not
exceed 200 pounds per square foot of shelf area"):

    Select Rstream(E2.area, sum(E2.weight))
    From (Select Rstream(*, SquareFtArea(E.(x,y,z)) As area,
                            Weight(E.tag_id) As weight)
          From EventStream E [Now]) E2 [Range 5 seconds]
    Group By E2.area
    Having sum(E2.weight) > 200 pounds
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

from .engine import ContinuousQuery
from .relops import Extend, GroupBy, Having, Project, sum_
from .stream_ops import Istream, Rstream
from .tuples import StreamTuple
from .windows import NowWindow, PartitionRowsWindow, RangeWindow


def location_update_query(name: str = "location_updates") -> ContinuousQuery:
    """Report each object's location whenever it changes.

    The ``[Partition By tag_id Row 1]`` window keeps only the latest event
    per tag; projecting to (tag_id, x, y, z) before Istream means a new event
    with an *unchanged* location inserts an identical value-tuple, which
    Istream suppresses — only genuine location changes stream out.
    """
    return ContinuousQuery(
        window=PartitionRowsWindow(keys=("tag_id",), rows=1),
        operators=[Project("tag_id", "x", "y", "z")],
        streamer=Istream(),
        name=name,
    )


def square_ft_area(t: StreamTuple) -> Tuple[int, int]:
    """The paper's ``SquareFtArea`` function: the 1 ft x 1 ft grid cell
    containing the event's (x, y)."""
    return (int(math.floor(t["x"])), int(math.floor(t["y"])))


def fire_code_query(
    weight_fn: Callable[[str], float],
    threshold_lbs: float = 200.0,
    window_s: float = 5.0,
    name: str = "fire_code",
) -> ContinuousQuery:
    """Detect square-foot areas whose total object weight exceeds the code.

    ``weight_fn`` plays the paper's ``Weight(tag_id)`` lookup.  Structured
    exactly like the paper's nesting: the inner query extends each event with
    ``area`` and ``weight`` over a ``[Now]`` window, the outer query windows
    the derived stream over 5 seconds, groups by area, sums weights and
    filters with Having.
    """
    inner = ContinuousQuery(
        window=NowWindow(),
        operators=[
            Extend(
                area=square_ft_area,
                weight=lambda t: float(weight_fn(t["tag_id"])),
            )
        ],
        streamer=Rstream(),
        # The composed pipeline registers under the *public* name: engine
        # outputs flow from the downstream query but are keyed by the query
        # object handed to register(), which is this one.
        name=name,
    )
    outer = ContinuousQuery(
        window=RangeWindow(window_s),
        operators=[
            GroupBy(keys=("area",), aggregates=[sum_("weight", as_="total_weight")]),
            Having(lambda t: t["total_weight"] > threshold_lbs),
        ],
        streamer=Rstream(),
        name=f"{name}__outer",
    )
    return inner.then(outer)
