"""Fig 6(b): the lab-deployment comparison table.

Rows: timeout (250/500/750 ms) x imagined shelf size (SS = 0.66x4 ft,
LS = 2.6x4 ft).  Columns: X/Y/XY error of our system, improved SMURF, and
uniform sampling.  Plus the paper's headline: average error reduction of our
system over SMURF (paper: 49%).

Paper shape:
* our system's error is smallest everywhere and insensitive to the imagined
  shelf depth;
* SMURF's and uniform's X error is pinned at about half the imagined shelf
  depth (0.33 ft SS / 1.3 ft LS);
* baselines' errors grow with the timeout (wider effective field);
* our system corrects the dead-reckoning drift via reference tags, the
  baselines cannot.
"""

import pytest

from conftest import one_shot, record_report
from repro.baselines.smurf_location import SmurfLocationConfig
from repro.baselines.uniform import UniformConfig
from repro.config import (
    InferenceConfig,
    LARGE_SHELF_DEPTH_FT,
    SMALL_SHELF_DEPTH_FT,
)
from repro.eval import mean_error_reduction, run_factored, run_smurf, run_uniform
from repro.eval.report import format_table
from repro.learning.logistic import field_of_truth_sensor, fit_sensor_to_field
from repro.models import SensorModel, config_for_sensor
from repro.simulation.lab import LabConfig, LabDeployment

TIMEOUTS = (0.25, 0.5, 0.75)
BASE_CFG = InferenceConfig(reader_particles=150, object_particles=300, seed=0)


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_lab_comparison(benchmark):
    lab = LabDeployment(LabConfig(seed=11))

    def sweep():
        rows = []
        reductions = []
        for depth, label in (
            (SMALL_SHELF_DEPTH_FT, "SS"),
            (LARGE_SHELF_DEPTH_FT, "LS"),
        ):
            shelves = lab.imagined_shelves(depth)
            for timeout in TIMEOUTS:
                trace = lab.generate(timeout_s=timeout)
                sensor = lab.sensor_for_timeout(timeout)
                fit = fit_sensor_to_field(
                    field_of_truth_sensor(sensor), max_distance=4.5
                )
                model = lab.world_model(fit.sensor_params, shelves)
                config = config_for_sensor(BASE_CFG, SensorModel(fit.sensor_params))
                # The baselines sample "over the intersection of the read
                # range and the shelf"; the handed-over range estimate must
                # cover the whole imagined shelf depth (as the paper's does —
                # its SMURF x-error equals half the shelf depth exactly).
                read_range = max(
                    SensorModel(fit.sensor_params).effective_range(0.05),
                    lab.config.shelf_x_ft + depth,
                )
                ours = run_factored(trace, model, config)
                smurf = run_smurf(
                    trace,
                    shelves,
                    SmurfLocationConfig(read_range_ft=read_range, seed=0),
                )
                uniform = run_uniform(
                    trace,
                    shelves,
                    UniformConfig(read_range_ft=read_range, seed=0),
                )
                rows.append(
                    [
                        f"{int(timeout * 1000)} ({label})",
                        ours.error.x,
                        ours.error.y,
                        ours.error.xy,
                        smurf.error.x,
                        smurf.error.y,
                        smurf.error.xy,
                        uniform.error.x,
                        uniform.error.y,
                        uniform.error.xy,
                    ]
                )
                reductions.append((ours.error.xy, smurf.error.xy))
        return rows, reductions

    rows, reductions = one_shot(benchmark, sweep)
    average_reduction = mean_error_reduction(reductions)
    report = (
        format_table(
            [
                "timeout(ms)",
                "ours X",
                "ours Y",
                "ours XY",
                "SMURF X",
                "SMURF Y",
                "SMURF XY",
                "unif X",
                "unif Y",
                "unif XY",
            ],
            rows,
            title="Fig 6(b): lab deployment errors (ft)",
            float_format="{:.2f}",
        )
        + f"\n\naverage error reduction over SMURF: {average_reduction * 100:.0f}%"
        + " (paper: 49%)"
    )
    record_report("fig6b_lab_comparison", report)

    # Shape assertions.
    for row in rows:
        _, ox, oy, oxy, sx, sy, sxy, ux, uy, uxy = row
        assert oxy < sxy, "our system must beat SMURF"
        assert oxy < uxy, "our system must beat uniform"
    # Baseline X error pinned at ~half the imagined shelf depth.
    ss_rows = [r for r in rows if "SS" in r[0]]
    ls_rows = [r for r in rows if "LS" in r[0]]
    for r in ss_rows:
        assert r[7] == pytest.approx(SMALL_SHELF_DEPTH_FT / 2, abs=0.12)
    for r in ls_rows:
        assert r[7] == pytest.approx(LARGE_SHELF_DEPTH_FT / 2, abs=0.4)
    # Headline: substantial average error reduction (paper: 49%).
    assert average_reduction > 0.30
