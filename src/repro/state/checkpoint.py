"""Checkpoint persistence: a versioned on-disk pipeline snapshot.

One checkpoint is a directory::

    <checkpoint>/
        manifest.json     # format version, configs, offsets, checksums
        shard_0000.npz    # every numpy array of shard 0's state tree
        shard_0001.npz
        ...

The manifest is the source of truth: it embeds the full
:class:`~repro.config.InferenceConfig` / :class:`OutputPolicyConfig` /
:class:`RuntimeConfig` as JSON (so a restore rebuilds *exactly* the
configuration the state was captured under), the stream offset
(``epochs_processed`` — the resume seek position), the event-bus watermark,
and per-shard JSON skeletons whose array leaves point into the shard's
``.npz`` file.  Each ``.npz`` is integrity-checked by a SHA-256 recorded in
the manifest; a flipped bit fails loudly at load, not as a silently wrong
posterior three thousand epochs later.

Writes are atomic at the directory level: content lands in a ``*.tmp``
sibling which is renamed into place, so a crash mid-checkpoint leaves either
the previous checkpoint or a ``.tmp`` turd, never a half-written manifest
that a restore would trust.

**Differential checkpoints** reuse the exact same layout with
``"kind": "delta"`` in the manifest: the shard ``.npz`` files hold *delta
capture* trees (dirty object blocks plus the full id order — see
:mod:`.delta`) instead of full ones, and the manifest records the chain —
``parent`` (the immediately preceding checkpoint, full or delta), ``base``
(the chain's full rebase), and ``chain_index``.  Loading a delta checkpoint
walks the chain back to its base and replays every delta, verifying each
link's SHA-256s and capture-serial continuity, so the caller always receives
fully materialized state trees.  The write stays atomic per link, and the
``LATEST`` pointer is only moved after a link's rename — a crash mid-delta
leaves ``LATEST`` on the previous complete, restorable checkpoint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import (
    ArenaConfig,
    BudgetConfig,
    CompressionConfig,
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
    SpatialIndexConfig,
    SupervisorConfig,
)
from ..errors import InferenceError, StateError
from ..faults import fault_point
from .delta import apply_shard_delta, is_delta_state
from .snapshot import (
    join_state_tree,
    jsonable_to_rng_state,
    rng_state_to_jsonable,
    split_state_tree,
)

#: Bump when the manifest or state-tree layout changes incompatibly.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Manifest ``kind`` values: a self-contained snapshot, or a differential
#: one that must be materialized against its ``parent``/``base`` chain.
CHECKPOINT_KINDS = ("full", "delta")


# ---------------------------------------------------------------------------
# Config (de)serialization
# ---------------------------------------------------------------------------
def inference_config_to_dict(config: InferenceConfig) -> dict:
    return dataclasses.asdict(config)


def inference_config_from_dict(data: dict) -> InferenceConfig:
    data = dict(data)
    try:
        data["compression"] = CompressionConfig(**data["compression"])
        data["spatial_index"] = SpatialIndexConfig(**data["spatial_index"])
        data["arena"] = ArenaConfig(**data["arena"])
        # Pre-adaptive manifests have no budget section: default (disabled).
        data["budget"] = BudgetConfig(**data.get("budget", {}))
        return InferenceConfig(**data)
    except (KeyError, TypeError) as exc:
        raise StateError(f"manifest inference config is invalid: {exc}") from exc


def policy_config_from_dict(data: dict) -> OutputPolicyConfig:
    try:
        return OutputPolicyConfig(**data)
    except TypeError as exc:
        raise StateError(f"manifest output policy is invalid: {exc}") from exc


def runtime_config_from_dict(data: dict) -> RuntimeConfig:
    data = dict(data)
    try:
        # Pre-supervision manifests have no supervisor section: None
        # (disabled) — and asdict() serialized it as a nested dict.
        supervisor = data.get("supervisor")
        data["supervisor"] = (
            SupervisorConfig(**supervisor) if supervisor is not None else None
        )
        # JSON round-trips tuples as lists.
        if data.get("shard_hosts") is not None:
            data["shard_hosts"] = tuple(data["shard_hosts"])
        return RuntimeConfig(**data)
    except TypeError as exc:
        raise StateError(f"manifest runtime config is invalid: {exc}") from exc


def config_hash(
    config: InferenceConfig, policy: OutputPolicyConfig, initial_heading: float
) -> str:
    """Digest of everything that must match between capture and restore.

    The runtime config is deliberately excluded: shard count, executor, and
    checkpoint cadence are *deployment* choices a restore may change
    (elastic re-sharding); the inference semantics live in the engine and
    policy configs.
    """
    payload = json.dumps(
        {
            "inference": inference_config_to_dict(config),
            "policy": dataclasses.asdict(policy),
            "initial_heading": float(initial_heading),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Manifest model
# ---------------------------------------------------------------------------
@dataclass
class CheckpointManifest:
    """Parsed manifest plus fully re-joined per-shard state trees.

    For a delta checkpoint the ``shard_states`` are already *materialized*
    (base + every delta replayed in order), so consumers — the restore
    path, the elastic re-sharder — never see differential trees; ``kind``
    and ``chain`` record what was on disk (``chain`` lists the directory
    names replayed, base first, empty for a full checkpoint).
    """

    version: int
    config: InferenceConfig
    policy: OutputPolicyConfig
    runtime: RuntimeConfig
    initial_heading: float
    epochs_processed: int
    bus_last_time: Optional[float]
    bus_published: int
    config_digest: str
    shard_states: List[dict]
    kind: str = "full"
    chain: List[str] = dataclasses.field(default_factory=list)
    #: Operator state of each query engine attached to the runtime at
    #: capture time, by attachment name (empty for pre-PR-7 checkpoints).
    #: Apply via ``engine.restore_state(manifest.query_states[name])`` after
    #: registering the same standing queries.
    query_states: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Free-form JSON payload captured from ``runtime.manifest_extras()``
    #: at save time (empty when the runtime declares none).  The ingest
    #: service records its exactly-once offsets here: per-source consumed
    #: sequence numbers, the epoch grid origin, and the delivery sink's
    #: next/acked emission offsets.  Like ``query_states``, the newest link
    #: of a delta chain carries the complete payload.
    extras: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        return len(self.shard_states)


# ---------------------------------------------------------------------------
# Save
# ---------------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fp:
        for chunk in iter(lambda: fp.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _shard_file_name(index: int) -> str:
    return f"shard_{index:04d}.npz"


def _encode_shard_state(state: dict) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Split a shard state tree, normalizing the RNG leaf to JSON first."""
    state = dict(state)
    engine = dict(state["engine"])
    engine["rng_state"] = rng_state_to_jsonable(engine["rng_state"])
    state["engine"] = engine
    return split_state_tree(state)


def _collect_shard_snapshots(shards, mode: str = "full") -> List[dict]:
    """Snapshot every shard, overlapping workers when they support it.

    Process-executor proxies expose a split-phase ``snapshot_async`` /
    ``collect_snapshot`` pair; requesting all shards before collecting any
    lets the workers serialize their state trees concurrently instead of one
    at a time.  Every pending reply is always collected — even after a
    failure — so the pipes stay in sync; the first error is re-raised once
    the sweep completes.
    """
    if len(shards) > 1 and all(hasattr(s, "snapshot_async") for s in shards):
        for shard in shards:
            shard.snapshot_async(mode)
        states: List[Optional[dict]] = []
        failure: Optional[BaseException] = None
        for shard in shards:
            try:
                states.append(shard.collect_snapshot())
            except (StateError, InferenceError) as exc:
                # Keep draining: a reply left behind on a healthy worker's
                # pipe would be misread by the next request after the caller
                # handles this checkpoint failure and keeps streaming.
                failure = failure if failure is not None else exc
                states.append(None)
        if failure is not None:
            raise failure
        return states
    return [shard.snapshot(mode) for shard in shards]


def _read_manifest_json(path: str) -> dict:
    """Load and sanity-check a checkpoint directory's raw manifest JSON."""
    manifest_path = os.path.join(os.fspath(path), MANIFEST_NAME)
    try:
        with open(manifest_path) as fp:
            manifest = json.load(fp)
    except FileNotFoundError:
        raise StateError(f"no checkpoint manifest at {manifest_path}") from None
    except json.JSONDecodeError as exc:
        raise StateError(f"corrupt checkpoint manifest {manifest_path}") from exc
    if manifest.get("format") != "repro-checkpoint":
        raise StateError(f"{manifest_path} is not a repro checkpoint manifest")
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise StateError(
            f"checkpoint format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def _check_delta_chains(parent_manifest: dict, states: List[dict], path) -> None:
    """Prove each delta capture chains onto the parent checkpoint's capture.

    Compares the per-shard ``parent_capture_serial`` of the fresh delta
    trees against the ``capture_serial`` recorded in the parent manifest's
    skeletons.  A mismatch means a capture happened between the parent
    checkpoint and this one (an explicit ``checkpoint()`` call, a test
    snapshot, …) — writing the delta anyway would persist a torn chain.
    """
    parents = parent_manifest.get("shards", [])
    if len(parents) != len(states):
        raise StateError(
            f"delta checkpoint has {len(states)} shards but its parent "
            f"{path} has {len(parents)}"
        )
    for index, (record, state) in enumerate(zip(parents, states)):
        for part in ("engine", "pipeline"):
            have = record["state"].get(part, {}).get("capture_serial")
            want = state[part].get("parent_capture_serial")
            if have is None or want != have:
                raise StateError(
                    f"shard {index} {part} delta does not chain onto {path}: "
                    f"delta parent serial {want!r}, checkpoint serial {have!r} "
                    "(a state capture happened in between; rebase with a "
                    "full checkpoint)"
                )


def save_checkpoint(runtime, path, mode: str = "full", parent=None) -> str:
    """Write a coordinated snapshot of a :class:`ShardedRuntime`.

    ``runtime`` is duck-typed (needs ``shards``, ``config``, ``policy``,
    ``runtime_config``, ``initial_heading``, ``epochs_processed``, ``bus``)
    so this module does not import the runtime layer.  Returns the final
    checkpoint path.

    ``mode="delta"`` writes a *differential* checkpoint: each shard ships
    only its dirty object blocks since ``parent`` (a sibling checkpoint
    directory, full or delta — the chain's base plus every intermediate
    delta must stay on disk until the next full rebase;
    :func:`rotate_checkpoints` knows not to break chains).  The delta is
    refused — never silently mis-written — when the shards' capture serials
    show it would not chain onto ``parent``.
    """
    path = os.fspath(path)
    if mode not in CHECKPOINT_KINDS:
        raise StateError(f"unknown checkpoint mode {mode!r}")
    if os.path.exists(path):
        raise StateError(f"checkpoint target already exists: {path}")
    parent_manifest: Optional[dict] = None
    if mode == "delta":
        if parent is None:
            raise StateError("a delta checkpoint needs a parent checkpoint")
        parent = os.fspath(parent)
        if os.path.dirname(os.path.abspath(parent)) != os.path.dirname(
            os.path.abspath(path)
        ):
            raise StateError(
                "a delta checkpoint must live beside its parent "
                f"({parent} vs {path})"
            )
        parent_manifest = _read_manifest_json(parent)
        digest = config_hash(runtime.config, runtime.policy, runtime.initial_heading)
        if parent_manifest.get("config_hash") != digest:
            raise StateError(
                f"cannot chain a delta onto {parent}: its configuration "
                "differs from the running one"
            )

    states = _collect_shard_snapshots(runtime.shards, mode=mode)
    if mode == "delta":
        assert parent_manifest is not None
        _check_delta_chains(parent_manifest, states, parent)
    shard_payloads = [_encode_shard_state(state) for state in states]
    # Query-engine operator state (shared windows, streamer counters,
    # pending tick).  Captured whole in every link — it is small next to
    # the shard slabs and holds arbitrary hashable tuple values (frozensets,
    # nested tuples), so it ships as a pickle blob, not npz.
    query_payloads = [
        (name, pickle.dumps(engine.snapshot_state(), protocol=pickle.HIGHEST_PROTOCOL))
        for name, engine in sorted(getattr(runtime, "query_engines", {}).items())
    ]
    # Runtime-attached extras (duck-typed like the rest of the runtime
    # surface): a serving layer hangs a callable off the runtime to record
    # its own offsets — ingest sequence numbers, sink delivery offsets —
    # inside the same coordinated cut as the shard state.  Must be JSON.
    extras_fn = getattr(runtime, "manifest_extras", None)
    extras = extras_fn() if callable(extras_fn) else None
    if extras is not None and not isinstance(extras, dict):
        raise StateError(
            f"runtime.manifest_extras() must return a dict, got {type(extras).__name__}"
        )

    tmp = path + ".tmp"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        shard_records = []
        for index, (skeleton, arrays) in enumerate(shard_payloads):
            file_name = _shard_file_name(index)
            file_path = os.path.join(tmp, file_name)
            # npz keys may contain '/', which savez would mangle through its
            # zip-member naming on some platforms; index arrays explicitly.
            keys = sorted(arrays)
            np.savez_compressed(
                file_path,
                __keys__=np.asarray(keys, dtype=str),
                **{f"a{i}": arrays[k] for i, k in enumerate(keys)},
            )
            # Chaos harness: simulated EIO / power loss / torn write per
            # shard file — the whole tmp dir is discarded on the raise.
            fault_point("checkpoint.write", path=file_path)
            shard_records.append(
                {
                    "file": file_name,
                    "sha256": _sha256_file(file_path),
                    "state": skeleton,
                }
            )
        query_records = []
        for index, (name, blob) in enumerate(query_payloads):
            file_name = f"query_{index:04d}.pkl"
            with open(os.path.join(tmp, file_name), "wb") as fp:
                fp.write(blob)
            query_records.append(
                {
                    "name": name,
                    "file": file_name,
                    "sha256": hashlib.sha256(blob).hexdigest(),
                }
            )
        manifest = {
            "format": "repro-checkpoint",
            "version": FORMAT_VERSION,
            "kind": mode,
            "config_hash": config_hash(
                runtime.config, runtime.policy, runtime.initial_heading
            ),
            "inference_config": inference_config_to_dict(runtime.config),
            "output_policy": dataclasses.asdict(runtime.policy),
            "runtime_config": dataclasses.asdict(runtime.runtime_config),
            "initial_heading": float(runtime.initial_heading),
            "epochs_processed": int(runtime.epochs_processed),
            "bus_last_time": runtime.bus.last_time,
            "bus_published": int(runtime.bus.published),
            "shards": shard_records,
        }
        if query_records:
            manifest["query_engines"] = query_records
        if extras:
            try:
                manifest["extras"] = json.loads(json.dumps(extras))
            except (TypeError, ValueError) as exc:
                raise StateError(
                    f"runtime.manifest_extras() is not JSON-serializable: {exc}"
                ) from exc
        if mode == "delta":
            assert parent_manifest is not None
            manifest["parent"] = os.path.basename(parent)
            manifest["base"] = (
                os.path.basename(parent)
                if parent_manifest.get("kind", "full") == "full"
                else parent_manifest["base"]
            )
            manifest["chain_index"] = int(parent_manifest.get("chain_index", 0)) + 1
        with open(os.path.join(tmp, MANIFEST_NAME), "w") as fp:
            json.dump(manifest, fp, indent=1)
            fp.write("\n")
        os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------
def _load_shard_arrays(path: str) -> Dict[str, np.ndarray]:
    with np.load(path) as data:
        keys = [str(k) for k in data["__keys__"]]
        return {k: data[f"a{i}"] for i, k in enumerate(keys)}


def _decode_shard_state(skeleton: dict, arrays: Dict[str, np.ndarray]) -> dict:
    state = join_state_tree(skeleton, arrays)
    state["engine"]["rng_state"] = jsonable_to_rng_state(state["engine"]["rng_state"])
    return state


def _load_query_states(path: str, manifest: dict, verify: bool) -> Dict[str, Any]:
    """Decode a checkpoint's query-engine operator states.

    The newest link of a delta chain carries the complete (whole, not
    differential) query state, so only the leaf manifest is consulted.
    Pre-PR-7 checkpoints have no ``query_engines`` section: empty dict.
    """
    states: Dict[str, Any] = {}
    for record in manifest.get("query_engines", []):
        file_path = os.path.join(path, record["file"])
        with open(file_path, "rb") as fp:
            blob = fp.read()
        if verify:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != record["sha256"]:
                raise StateError(
                    f"checksum mismatch for {file_path}: manifest says "
                    f"{record['sha256'][:12]}…, file is {actual[:12]}…"
                )
        states[record["name"]] = pickle.loads(blob)
    return states


def _load_shard_states(path: str, manifest: dict, verify: bool) -> List[dict]:
    """Decode one checkpoint directory's shard trees (full *or* delta)."""
    shard_states = []
    for record in manifest["shards"]:
        file_path = os.path.join(path, record["file"])
        if verify:
            actual = _sha256_file(file_path)
            if actual != record["sha256"]:
                raise StateError(
                    f"checksum mismatch for {file_path}: manifest says "
                    f"{record['sha256'][:12]}…, file is {actual[:12]}…"
                )
        arrays = _load_shard_arrays(file_path)
        shard_states.append(_decode_shard_state(record["state"], arrays))
    return shard_states


def _resolve_chain(path: str, manifest: dict) -> List[Tuple[str, dict]]:
    """Walk a delta checkpoint's parent links back to its full base.

    Returns ``[(path, manifest), …]`` ordered base first.  Any defect —
    missing parent, parent in a different directory, a cycle, a chain whose
    root is not a full checkpoint, a configuration change mid-chain —
    raises :class:`StateError`: a broken chain must fail at load, never
    materialize a half-right state.
    """
    directory = os.path.dirname(os.path.abspath(path))
    chain = [(path, manifest)]
    seen = {os.path.basename(os.path.abspath(path))}
    current = manifest
    while current.get("kind", "full") == "delta":
        parent_name = current.get("parent")
        if not parent_name or os.path.basename(parent_name) != parent_name:
            raise StateError(f"delta checkpoint {chain[-1][0]} has no valid parent")
        if parent_name in seen:
            raise StateError(f"delta checkpoint chain at {path} contains a cycle")
        seen.add(parent_name)
        parent_path = os.path.join(directory, parent_name)
        try:
            parent_manifest = _read_manifest_json(parent_path)
        except StateError as exc:
            raise StateError(
                f"delta checkpoint {chain[-1][0]} needs its parent "
                f"{parent_path}, which cannot be read: {exc}"
            ) from exc
        if parent_manifest.get("config_hash") != manifest.get("config_hash"):
            raise StateError(
                f"delta chain at {path} crosses a configuration change "
                f"(at {parent_path})"
            )
        chain.append((parent_path, parent_manifest))
        current = parent_manifest
    chain.reverse()
    return chain


def load_checkpoint(path, verify: bool = True) -> CheckpointManifest:
    """Parse a checkpoint directory back into configs + shard state trees.

    A *delta* checkpoint is transparently materialized: the chain is
    resolved back to its full base (all within the same directory), every
    link's shard files are integrity-checked, each delta's capture serials
    are proven to chain onto its parent's, and the deltas are replayed in
    order — the returned ``shard_states`` are bit-for-bit the trees a full
    checkpoint at the same epoch would hold.

    ``verify`` checks each shard file's SHA-256 against its manifest before
    deserializing it (skippable for speed when the storage is trusted).
    """
    path = os.fspath(path)
    manifest = _read_manifest_json(path)
    kind = manifest.get("kind", "full")
    if kind not in CHECKPOINT_KINDS:
        raise StateError(f"unknown checkpoint kind {kind!r} at {path}")
    chain = _resolve_chain(path, manifest) if kind == "delta" else [(path, manifest)]
    base_path, base_manifest = chain[0]
    if base_manifest.get("kind", "full") != "full":
        raise StateError(
            f"delta chain at {path} does not terminate in a full checkpoint"
        )
    shard_states = _load_shard_states(base_path, base_manifest, verify)
    for link_path, link_manifest in chain[1:]:
        if len(link_manifest["shards"]) != len(shard_states):
            raise StateError(
                f"delta checkpoint {link_path} changes the shard count "
                "mid-chain"
            )
        deltas = _load_shard_states(link_path, link_manifest, verify)
        shard_states = [
            apply_shard_delta(state, delta)
            for state, delta in zip(shard_states, deltas)
        ]
    for state in shard_states:
        if is_delta_state(state):  # pragma: no cover - defensive
            raise StateError(f"materialization of {path} left a delta tree")
    return CheckpointManifest(
        version=int(manifest["version"]),
        config=inference_config_from_dict(manifest["inference_config"]),
        policy=policy_config_from_dict(manifest["output_policy"]),
        runtime=runtime_config_from_dict(manifest["runtime_config"]),
        initial_heading=float(manifest["initial_heading"]),
        epochs_processed=int(manifest["epochs_processed"]),
        bus_last_time=manifest["bus_last_time"],
        bus_published=int(manifest["bus_published"]),
        config_digest=str(manifest["config_hash"]),
        shard_states=shard_states,
        kind=kind,
        chain=[os.path.basename(p) for p, _ in chain] if kind == "delta" else [],
        query_states=_load_query_states(path, manifest, verify),
        extras=dict(manifest.get("extras", {})),
    )


# ---------------------------------------------------------------------------
# Periodic-checkpoint housekeeping
# ---------------------------------------------------------------------------
def checkpoint_size_bytes(path) -> int:
    """Total on-disk size of a checkpoint directory."""
    path = os.fspath(path)
    return sum(
        os.path.getsize(os.path.join(path, name)) for name in os.listdir(path)
    )


def latest_checkpoint(directory) -> Optional[str]:
    """Resolve the ``LATEST`` pointer the runtime maintains, if present.

    A crash can tear the pointer (empty or pointing at a checkpoint that
    never finished its rename); completed checkpoints are themselves
    crash-consistent, so a bad pointer falls back to the newest
    ``epoch_*`` directory with a manifest rather than stranding recovery.
    """
    directory = os.fspath(directory)
    try:
        with open(os.path.join(directory, "LATEST")) as fp:
            name = fp.read().strip()
    except OSError:
        name = ""
    if name:
        target = os.path.join(directory, name)
        if os.path.isfile(os.path.join(target, "manifest.json")):
            return target
    try:
        entries = sorted(os.listdir(directory), reverse=True)
    except OSError:
        return None
    for name in entries:
        if not name.startswith("epoch_") or name.endswith(".tmp"):
            continue
        target = os.path.join(directory, name)
        if os.path.isfile(os.path.join(target, "manifest.json")):
            return target
    return None


def _chain_dependencies(directory: str, names: List[str]) -> set:
    """Transitive parent/base closure of the named checkpoints.

    Reads each manifest's ``parent``/``base`` links; an unreadable manifest
    contributes no dependencies (it cannot be restored anyway).  Only names
    are followed — a manifest can never pull in a directory outside
    ``directory``.
    """
    required: set = set()
    stack = list(names)
    while stack:
        name = stack.pop()
        try:
            manifest = _read_manifest_json(os.path.join(directory, name))
        except StateError:
            continue
        for key in ("parent", "base"):
            dep = manifest.get(key)
            if dep and os.path.basename(dep) == dep and dep not in required:
                required.add(dep)
                stack.append(dep)
    return required


def rotate_checkpoints(directory, keep: int) -> List[str]:
    """Delete the oldest ``epoch_*`` checkpoints beyond ``keep``.

    Ordering is by the zero-padded epoch index in the directory name, so it
    is stable regardless of filesystem timestamps.  A checkpoint that a
    *retained* checkpoint still depends on — the full base of a delta
    chain, or any intermediate delta — is never deleted, no matter how old:
    deleting it would leave the newest checkpoints unrestorable.  Such
    stragglers are reclaimed by a later rotation, once the next full rebase
    has freed the chain.  Returns removed paths.
    """
    directory = os.fspath(directory)
    entries = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith("epoch_") and os.path.isdir(os.path.join(directory, name))
    )
    kept = entries[-keep:] if keep > 0 else []
    required = _chain_dependencies(directory, kept)
    removed = []
    for name in entries[: max(0, len(entries) - keep)] if keep > 0 else entries:
        if name in required:
            continue
        target = os.path.join(directory, name)
        try:
            shutil.rmtree(target)
        except FileNotFoundError:
            # Already gone — e.g. a drain-time rotation racing the periodic
            # one after a signal.  Rotation is housekeeping; a missing
            # victim is success, not failure.
            continue
        removed.append(target)
    return removed
