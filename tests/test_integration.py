"""End-to-end integration tests: simulator -> filter -> events -> queries."""

import numpy as np
import pytest

from repro import (
    CleaningPipeline,
    FactoredParticleFilter,
    InferenceConfig,
    OutputPolicyConfig,
    QueryEngine,
    WarehouseConfig,
    WarehouseSimulator,
    fire_code_query,
    location_update_query,
    tuple_from_event,
)
from repro.eval import inference_error, run_factored, run_smurf, run_uniform
from repro.simulation import LayoutConfig, ScheduledMove
from repro.streams.sinks import CollectingSink


@pytest.fixture(scope="module")
def scene():
    sim = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=8, n_shelf_tags=3), seed=42)
    )
    return sim, sim.generate()


CFG = InferenceConfig(reader_particles=80, object_particles=150, seed=1)


class TestFullPipeline:
    def test_trace_to_events_to_truth(self, scene):
        sim, trace = scene
        engine = FactoredParticleFilter(sim.world_model(), CFG)
        sink = CollectingSink()
        pipeline = CleaningPipeline(engine, OutputPolicyConfig(delay_s=30.0), sink)
        pipeline.run(trace.epochs())
        assert len(sink) >= 8  # every object reported at least once
        estimates = {
            tag.number: event.array for tag, event in sink.latest_by_tag().items()
        }
        truth = trace.truth.final_object_locations()
        summary = inference_error(estimates, truth)
        assert summary.xy < 0.5

    def test_events_feed_location_update_query(self, scene):
        sim, trace = scene
        result = run_factored(trace, sim.world_model(), CFG)
        engine = QueryEngine()
        engine.register(location_update_query())
        # Re-emit the final estimates as an event stream.
        from repro.streams.records import LocationEvent, TagId

        events = [
            LocationEvent(float(i), TagId.object(n), tuple(p))
            for i, (n, p) in enumerate(sorted(result.estimates.items()))
        ]
        for event in events:
            engine.push(tuple_from_event(event))
        engine.finish()
        assert len(engine.outputs["location_updates"]) == len(events)

    def test_fire_code_query_over_cleaned_stream(self, scene):
        sim, trace = scene
        engine = FactoredParticleFilter(sim.world_model(), CFG)
        sink = CollectingSink()
        CleaningPipeline(engine, OutputPolicyConfig(delay_s=20.0), sink).run(
            trace.epochs()
        )
        qe = QueryEngine()
        qe.register(fire_code_query(lambda tag_id: 120.0, threshold_lbs=200.0))
        for event in sink.events:
            qe.push(tuple_from_event(event))
        qe.finish()
        # Objects are 0.5 ft apart: several share a square-foot cell, so
        # violations (2 x 120 > 200) must fire.
        assert len(qe.outputs["fire_code"]) >= 1


class TestMovedObjectRecovery:
    def test_move_relocalized_on_second_round(self):
        # Object 2 (y=1.0) moves +1.8 ft along the shelf at epoch 48 — after
        # round 1 observed it, while round 2 can still observe the new spot.
        move = ScheduledMove(
            epoch_index=48, numbers=(2,), displacement=(0.0, 1.8, 0.0)
        )
        sim = WarehouseSimulator(
            WarehouseConfig(
                layout=LayoutConfig(n_objects=6),
                n_rounds=2,
                moves=(move,),
                seed=17,
            )
        )
        trace = sim.generate()
        model = sim.world_model(random_walk_motion=True)
        result = run_factored(trace, model, CFG)
        truth = trace.truth.final_object_locations()
        # The moved object's final estimate should be near its NEW location
        # (this is the paper's Fig 5(h) mid-range regime: elevated error is
        # expected, full-displacement error is not).
        err = float(np.linalg.norm(result.estimates[2][:2] - truth[2][:2]))
        assert err < 1.2


class TestSystemOrdering:
    def test_paper_headline_ordering(self, scene):
        """Inference < SMURF and inference < uniform in XY error."""
        sim, trace = scene
        ours = run_factored(trace, sim.world_model(), CFG)
        smurf = run_smurf(trace, sim.layout.shelves)
        uniform = run_uniform(trace, sim.layout.shelves)
        assert ours.error.xy < smurf.error.xy
        assert ours.error.xy < uniform.error.xy


class TestEngineVariantsAgree:
    def test_all_variants_meet_accuracy(self, scene):
        sim, trace = scene
        model = sim.world_model()
        for config in (
            CFG,
            CFG.with_index(),
            CFG.with_index().with_compression(unread_epochs=8),
        ):
            result = run_factored(trace, model, config)
            assert result.error.xy < 0.5, f"variant {config} too inaccurate"


class TestTraceRoundtripInference:
    def test_saved_trace_replays_identically(self, scene, tmp_path):
        sim, trace = scene
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fp:
            trace.dump(fp)
        from repro.streams.sources import Trace

        with open(path) as fp:
            loaded = Trace.load(fp)
        a = run_factored(trace, sim.world_model(), CFG)
        b = run_factored(loaded, sim.world_model(), CFG)
        for n in a.estimates:
            assert a.estimates[n] == pytest.approx(b.estimates[n])
