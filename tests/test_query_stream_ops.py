"""Tests for Istream / Rstream / Dstream."""

from repro.query.stream_ops import Dstream, Istream, Rstream
from repro.query.tuples import StreamTuple


def tup(t=0.0, **values):
    return StreamTuple(t, values)


class TestRstream:
    def test_emits_full_relation(self):
        op = Rstream()
        out = op.process(1.0, [tup(a=1), tup(a=2)])
        assert len(out) == 2
        assert all(t.time == 1.0 for t in out)


class TestIstream:
    def test_initial_relation_all_new(self):
        op = Istream()
        out = op.process(0.0, [tup(a=1)])
        assert [t["a"] for t in out] == [1]

    def test_unchanged_relation_emits_nothing(self):
        op = Istream()
        op.process(0.0, [tup(0.0, a=1)])
        out = op.process(1.0, [tup(1.0, a=1)])  # same value, newer timestamp
        assert out == []

    def test_insertion_detected(self):
        op = Istream()
        op.process(0.0, [tup(a=1)])
        out = op.process(1.0, [tup(a=1), tup(a=2)])
        assert [t["a"] for t in out] == [2]

    def test_value_replacement_detected(self):
        op = Istream()
        op.process(0.0, [tup(k="obj", y=1.0)])
        out = op.process(1.0, [tup(k="obj", y=2.0)])
        assert len(out) == 1
        assert out[0]["y"] == 2.0

    def test_multiplicity_respected(self):
        op = Istream()
        op.process(0.0, [tup(a=1)])
        out = op.process(1.0, [tup(a=1), tup(a=1)])  # second copy is new
        assert len(out) == 1

    def test_emitted_timestamps_are_tick_time(self):
        op = Istream()
        out = op.process(7.0, [tup(0.0, a=1)])
        assert out[0].time == 7.0


class TestDstream:
    def test_deletion_detected(self):
        op = Dstream()
        op.process(0.0, [tup(a=1), tup(a=2)])
        out = op.process(1.0, [tup(a=2)])
        assert [t["a"] for t in out] == [1]

    def test_no_deletion_no_output(self):
        op = Dstream()
        op.process(0.0, [tup(a=1)])
        assert op.process(1.0, [tup(a=1)]) == []

    def test_first_tick_emits_nothing(self):
        op = Dstream()
        assert op.process(0.0, [tup(a=1)]) == []


class TestIstreamDstreamDuality:
    def test_replacement_appears_in_both(self):
        ist, dst = Istream(), Dstream()
        rel0 = [tup(k="a", v=1)]
        rel1 = [tup(k="a", v=2)]
        ist.process(0.0, rel0)
        dst.process(0.0, rel0)
        inserted = ist.process(1.0, rel1)
        deleted = dst.process(1.0, rel1)
        assert [t["v"] for t in inserted] == [2]
        assert [t["v"] for t in deleted] == [1]
