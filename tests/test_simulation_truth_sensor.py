"""Tests for ground-truth sensor fields."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.models.sensor import SensorModel, SensorParams
from repro.simulation.truth_sensor import (
    ConeTruthSensor,
    LogisticTruthSensor,
    SphericalTruthSensor,
)


def probe(sensor, d, theta):
    tag = np.array([[d * math.cos(theta), d * math.sin(theta), 0.0]])
    return float(sensor.read_probability(np.zeros(3), 0.0, tag)[0])


class TestConeTruthSensor:
    def test_major_range_uniform(self):
        cone = ConeTruthSensor(rr_major=0.8, max_range=3.0)
        assert probe(cone, 1.0, 0.0) == pytest.approx(0.8)
        assert probe(cone, 2.9, math.radians(10)) == pytest.approx(0.8)

    def test_minor_range_decays(self):
        cone = ConeTruthSensor(rr_major=1.0)
        p_mid_minor = probe(cone, 1.0, math.radians(22.5))
        assert 0.0 < p_mid_minor < 1.0
        assert p_mid_minor == pytest.approx(0.5, abs=0.05)

    def test_outside_aperture_zero(self):
        cone = ConeTruthSensor()
        assert probe(cone, 1.0, math.radians(31)) == 0.0
        assert probe(cone, 1.0, math.pi) == 0.0

    def test_distance_fringe(self):
        cone = ConeTruthSensor(max_range=3.0, range_fringe=0.2)
        assert probe(cone, 3.2, 0.0) == pytest.approx(1.0 - 0.2 / 0.6, abs=0.01)
        assert probe(cone, 3.7, 0.0) == 0.0
        assert cone.max_effective_range == pytest.approx(3.6)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ConeTruthSensor(rr_major=1.5)
        with pytest.raises(SimulationError):
            ConeTruthSensor(max_range=0)

    def test_heading_rotates_field(self):
        cone = ConeTruthSensor()
        tag = np.array([[0.0, 1.0, 0.0]])
        p_facing = float(
            cone.read_probability(np.zeros(3), math.pi / 2, tag)[0]
        )
        p_not_facing = float(cone.read_probability(np.zeros(3), 0.0, tag)[0])
        assert p_facing > 0.9
        assert p_not_facing == 0.0


class TestSphericalTruthSensor:
    def test_peak_on_boresight(self):
        s = SphericalTruthSensor(rr_peak=0.9)
        assert probe(s, 0.5, 0.0) == pytest.approx(0.9)

    def test_wide_minor_range(self):
        s = SphericalTruthSensor()
        # Readable far off boresight (the lab antenna's wide field).
        assert probe(s, 1.0, math.radians(60)) > 0.05

    def test_angle_cutoff(self):
        s = SphericalTruthSensor(angle_cutoff=math.radians(85))
        assert probe(s, 1.0, math.radians(90)) == 0.0

    def test_radial_decay(self):
        s = SphericalTruthSensor(inner_range=1.0, max_range=3.0)
        assert probe(s, 0.5, 0.0) > probe(s, 2.0, 0.0) > probe(s, 2.9, 0.0)
        assert probe(s, 3.5, 0.0) == 0.0

    def test_minor_gain_scales_shoulder(self):
        weak = SphericalTruthSensor(minor_gain=0.2)
        strong = SphericalTruthSensor(minor_gain=0.8)
        theta = math.radians(50)
        assert probe(strong, 1.0, theta) > probe(weak, 1.0, theta)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SphericalTruthSensor(rr_peak=2.0)
        with pytest.raises(SimulationError):
            SphericalTruthSensor(inner_range=5.0, max_range=3.0)


class TestLogisticTruthSensor:
    def test_matches_model_within_cutoff(self):
        model = SensorModel(SensorParams(a=(3.0, 0.0, -1.0), b=(0.0, -4.0)))
        truth = LogisticTruthSensor(model, cutoff_range=5.0)
        assert probe(truth, 1.0, 0.3) == pytest.approx(
            float(model.read_probability(1.0, 0.3))
        )

    def test_zero_beyond_cutoff(self):
        model = SensorModel(SensorParams(a=(10.0, 0.0, -0.01), b=(0.0, -0.01)))
        truth = LogisticTruthSensor(model, cutoff_range=2.0)
        assert probe(truth, 3.0, 0.0) == 0.0
