"""Durable state: checkpoint, restore, replay, and elastic re-sharding.

The cleaning pipeline is a long-running stateful stream operator; this
package makes its state survive the process.  A *checkpoint* is a
coordinated, versioned, integrity-checked snapshot of every filter shard —
belief-arena slabs (compacted on write), RNG bit-generator states, reader
beliefs, output-policy bookkeeping, and the stream offset — written as one
directory of ``.npz`` files plus a JSON manifest.

* :func:`save_checkpoint` / :meth:`ShardedRuntime.checkpoint` write one;
  ``RuntimeConfig(checkpoint_every_s=..., checkpoint_dir=...)`` makes the
  runtime write them periodically at epoch boundaries, with rotation.
  ``checkpoint_mode="delta"`` turns the periodic checkpoints into
  *differential* chains — dirty object blocks only, rebased with a full
  snapshot every ``checkpoint_full_every``-th link (:mod:`.delta`).
* :func:`load_checkpoint` parses one back into configs + state trees,
  transparently materializing delta chains bitwise-identically to a full
  snapshot at the same epoch.
* :func:`restore_runtime` rebuilds a live runtime from one: exact (bitwise
  resume) at the recorded shard layout, or *elastically re-sharded* to a
  different shard count without replaying from epoch 0.

See the module docstrings of :mod:`.checkpoint` (on-disk format) and
:mod:`.restore` (resume/re-shard semantics and guarantees).
"""

from .checkpoint import (
    CHECKPOINT_KINDS,
    FORMAT_VERSION,
    CheckpointManifest,
    checkpoint_size_bytes,
    config_hash,
    latest_checkpoint,
    load_checkpoint,
    rotate_checkpoints,
    save_checkpoint,
)
from .delta import apply_shard_delta, is_delta_state
from .restore import apply_query_states, reshard_states, restore_runtime
from .snapshot import (
    generator_from_state,
    join_state_tree,
    jsonable_to_rng_state,
    rng_state_to_jsonable,
    split_state_tree,
)

__all__ = [
    "CHECKPOINT_KINDS",
    "FORMAT_VERSION",
    "CheckpointManifest",
    "apply_query_states",
    "apply_shard_delta",
    "checkpoint_size_bytes",
    "config_hash",
    "is_delta_state",
    "generator_from_state",
    "join_state_tree",
    "jsonable_to_rng_state",
    "latest_checkpoint",
    "load_checkpoint",
    "reshard_states",
    "restore_runtime",
    "rng_state_to_jsonable",
    "rotate_checkpoints",
    "save_checkpoint",
    "split_state_tree",
]
