"""Sharded streaming runtime: partitioned filter shards, an event bus, and
the bridge into the continuous-query engine.

``epochs -> EpochRouter -> [FilterShard ...] -> EventBus -> QueryBridge``

See :class:`ShardedRuntime` for the end-to-end driver.
"""

from .bridge import QueryBridge
from .bus import EventBus
from .partition import hash_partition, make_partitioner, mod_partition, shard_seed
from .readview import RuntimeReadView
from .router import EpochRouter
from .runtime import ShardedRuntime
from .shard import FilterShard
from .workers import FactoredEngineFactory, ShardWorkerProxy

__all__ = [
    "EpochRouter",
    "EventBus",
    "FactoredEngineFactory",
    "FilterShard",
    "QueryBridge",
    "RuntimeReadView",
    "ShardWorkerProxy",
    "ShardedRuntime",
    "hash_partition",
    "make_partitioner",
    "mod_partition",
    "shard_seed",
]
