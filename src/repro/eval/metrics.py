"""Evaluation metrics (Section V-A).

"The accuracy of query output was measured using inference error, which is
the average distance between reported object locations and true object
locations."  Fig 6(b) additionally breaks the error into per-axis components
(X, Y) alongside the planar distance (XY), and the headline comparison is
the *error reduction* of our system over SMURF (49% on average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ErrorSummary:
    """Mean absolute errors over a set of objects, in feet."""

    x: float
    y: float
    xy: float
    n_objects: int

    def __str__(self) -> str:
        return (
            f"X={self.x:.3f}ft Y={self.y:.3f}ft XY={self.xy:.3f}ft "
            f"(n={self.n_objects})"
        )


def inference_error(
    estimates: Mapping[int, np.ndarray],
    truth: Mapping[int, np.ndarray],
    numbers: Optional[Iterable[int]] = None,
) -> ErrorSummary:
    """Average per-axis and planar distance between estimates and truth.

    Objects present in ``truth`` but missing from ``estimates`` are an error
    (the system was supposed to report every object); restrict with
    ``numbers`` to score a subset.
    """
    keys = sorted(numbers) if numbers is not None else sorted(truth)
    if not keys:
        raise ConfigurationError("no objects to score")
    missing = [k for k in keys if k not in estimates]
    if missing:
        raise ConfigurationError(
            f"estimates missing objects {missing[:10]}"
            + ("..." if len(missing) > 10 else "")
        )
    dx = []
    dy = []
    dxy = []
    for key in keys:
        est = np.asarray(estimates[key], dtype=float)
        tru = np.asarray(truth[key], dtype=float)
        dx.append(abs(est[0] - tru[0]))
        dy.append(abs(est[1] - tru[1]))
        dxy.append(float(np.hypot(est[0] - tru[0], est[1] - tru[1])))
    return ErrorSummary(
        x=float(np.mean(dx)),
        y=float(np.mean(dy)),
        xy=float(np.mean(dxy)),
        n_objects=len(keys),
    )


def error_reduction(ours: float, baseline: float) -> float:
    """Fractional error reduction of ``ours`` relative to ``baseline``.

    The paper's headline: "our approach offers 49% error reduction over
    SMURF" = 1 - ours/baseline, averaged across configurations.
    """
    if baseline <= 0:
        raise ConfigurationError("baseline error must be positive")
    return 1.0 - ours / baseline


def mean_error_reduction(
    pairs: Iterable[tuple],
) -> float:
    """Average error reduction over (ours, baseline) pairs."""
    values = [error_reduction(ours, baseline) for ours, baseline in pairs]
    if not values:
        raise ConfigurationError("no pairs")
    return float(np.mean(values))


def within_accuracy(
    estimates: Mapping[int, np.ndarray],
    truth: Mapping[int, np.ndarray],
    requirement_ft: float,
) -> float:
    """Fraction of objects whose planar error meets the requirement
    (Section V-D uses a 0.5 ft accuracy requirement)."""
    keys = sorted(truth)
    if not keys:
        raise ConfigurationError("no objects to score")
    hits = 0
    for key in keys:
        if key not in estimates:
            continue
        est = np.asarray(estimates[key], dtype=float)
        tru = np.asarray(truth[key], dtype=float)
        if float(np.hypot(est[0] - tru[0], est[1] - tru[1])) <= requirement_ft:
            hits += 1
    return hits / len(keys)
