"""Integration tests for the checkpoint format and runtime restore.

The acceptance guarantees of the durable-state subsystem:

* a run checkpointed mid-trace and restored *at the same shard count* emits
  bitwise-identical events (tags, timestamps, positions) to the
  uninterrupted run — for 1 and 2 shards, with and without compression;
* restoring a 4-shard checkpoint into 2 shards (elastic re-shard) completes
  the trace with the exact (time, tag) stream and positions within the
  sharded-parity tolerance (0.6 ft);
* corruption — flipped npz bytes, edited manifests, wrong versions — fails
  loudly with :class:`StateError` at load, never silently.
"""

import json
import os

import numpy as np
import pytest

from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
)
from repro.errors import ConfigurationError, StateError, StreamError
from repro.inference.naive import NaiveParticleFilter
from repro.runtime import EventBus, ShardedRuntime
from repro.state import (
    FORMAT_VERSION,
    checkpoint_size_bytes,
    latest_checkpoint,
    load_checkpoint,
    restore_runtime,
    rotate_checkpoints,
    save_checkpoint,
)

POLICY = OutputPolicyConfig(delay_s=20.0)


@pytest.fixture(scope="module")
def scenario():
    from repro.simulation.layout import LayoutConfig
    from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

    simulator = WarehouseSimulator(
        WarehouseConfig(layout=LayoutConfig(n_objects=8, n_shelf_tags=3), seed=11)
    )
    trace = simulator.generate()
    config = InferenceConfig(reader_particles=60, object_particles=120, seed=7)
    return simulator.world_model(), trace, config


def run_full(model, trace, config, n_shards):
    runtime = ShardedRuntime(
        model, config, RuntimeConfig(n_shards=n_shards), POLICY
    )
    return runtime.run(trace.epochs()).events


def checkpoint_at(model, trace, config, n_shards, split, path):
    """Run a prefix, checkpoint, and abandon the runtime (simulated kill)."""
    runtime = ShardedRuntime(
        model, config, RuntimeConfig(n_shards=n_shards), POLICY
    )
    for epoch in trace.epochs()[:split]:
        runtime.step(epoch)
    runtime.checkpoint(path)
    prefix = list(runtime.sink.events)
    runtime.abort()
    return prefix


def assert_bitwise_equal(events, reference):
    assert len(events) == len(reference)
    for ours, ref in zip(events, reference):
        assert ours.time == ref.time and ours.tag == ref.tag
        np.testing.assert_array_equal(ours.position, ref.position)


def tree_equal(a, b, path=""):
    """First differing path between two state trees (None if identical):
    dict key order, array dtype and contents, scalars."""
    if isinstance(a, dict) and isinstance(b, dict):
        if list(a) != list(b):
            return f"{path}: keys {list(a)} != {list(b)}"
        for key in a:
            diff = tree_equal(a[key], b[key], f"{path}/{key}")
            if diff:
                return diff
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = tree_equal(x, y, f"{path}/{i}")
            if diff:
                return diff
        return None
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        if a.dtype != b.dtype:
            return f"{path}: dtype {a.dtype} != {b.dtype}"
        if not np.array_equal(a, b):
            return f"{path}: arrays differ"
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


class TestCheckpointFormat:
    def test_manifest_round_trip(self, scenario, tmp_path):
        model, trace, config = scenario
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 2, 15, path)
        manifest = load_checkpoint(path)
        assert manifest.version == FORMAT_VERSION
        assert manifest.n_shards == 2
        assert manifest.epochs_processed == 15
        assert manifest.config == config  # exact dataclass round trip
        assert manifest.policy == POLICY
        assert manifest.runtime.n_shards == 2
        assert checkpoint_size_bytes(path) > 0
        for state in manifest.shard_states:
            assert state["engine"]["engine"] == "factored"
            assert state["engine"]["epoch_index"] == 14

    def test_refuses_existing_target(self, scenario, tmp_path):
        model, trace, config = scenario
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 1, 5, path)
        runtime = ShardedRuntime(model, config, RuntimeConfig(), POLICY)
        runtime.step(trace.epochs()[0])
        with pytest.raises(StateError, match="already exists"):
            save_checkpoint(runtime, path)
        runtime.abort()

    def test_checksum_mismatch_detected(self, scenario, tmp_path):
        model, trace, config = scenario
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 1, 5, path)
        shard_file = path / "shard_0000.npz"
        blob = bytearray(shard_file.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard_file.write_bytes(bytes(blob))
        with pytest.raises(StateError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_edited_manifest_config_detected(self, scenario, tmp_path):
        model, trace, config = scenario
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 1, 5, path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["inference_config"]["seed"] = 999  # tamper
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StateError, match="config hash"):
            restore_runtime(path, model)

    def test_unsupported_version_rejected(self, scenario, tmp_path):
        model, trace, config = scenario
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 1, 5, path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StateError, match="version"):
            load_checkpoint(path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StateError, match="manifest"):
            load_checkpoint(tmp_path)

    def test_checkpoint_after_finish_raises_state_error(self, scenario, tmp_path):
        model, trace, config = scenario
        runtime = ShardedRuntime(model, config, RuntimeConfig(), POLICY)
        runtime.run(trace.epochs())
        with pytest.raises(StateError, match="finished"):
            runtime.checkpoint(tmp_path / "ck")

    def test_naive_engine_checkpoint_round_trip(self, scenario, tmp_path):
        """Naive-engine shards checkpoint and restore bitwise — but only in
        full mode, and only back into a runtime built with a matching
        engine_factory (the default factored restore must refuse)."""
        model, trace, config = scenario
        factory = lambda cfg: NaiveParticleFilter(model, cfg, n_particles=50)
        runtime = ShardedRuntime(
            model, config, RuntimeConfig(), POLICY, engine_factory=factory
        )
        for epoch in trace.epochs()[:5]:
            runtime.step(epoch)
        path = tmp_path / "ck"
        save_checkpoint(runtime, path)
        saved = [shard.snapshot() for shard in runtime.shards]

        # Differential capture stays factored-only.
        with pytest.raises(StateError, match="mode='full'"):
            runtime.checkpoint(tmp_path / "ck_delta", mode="delta", parent=path)
        runtime.abort()

        # Restoring without the factory would silently build factored
        # shards around naive state — refused loudly instead.
        with pytest.raises(StateError, match="engine_factory"):
            restore_runtime(path, model)

        restored, manifest = restore_runtime(path, model, engine_factory=factory)
        assert manifest.epochs_processed == 5
        for before, after in zip(saved, (s.snapshot() for s in restored.shards)):
            assert before["engine"]["engine"] == "naive"
            assert tree_equal(before, after) is None
        restored.abort()

    def test_undrained_shard_refuses_snapshot(self, scenario):
        model, trace, config = scenario
        runtime = ShardedRuntime(model, config, RuntimeConfig(), POLICY)
        for epoch in trace.epochs()[:25]:
            runtime.step(epoch)
        shard = runtime.shards[0]
        from repro.streams.records import LocationEvent, TagId

        shard._buffer.emit(
            LocationEvent(time=1.0, tag=TagId.object(0), position=(0, 0, 0))
        )
        with pytest.raises(StateError, match="undrained"):
            shard.snapshot()
        runtime.abort()


class TestResumeParity:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_resume_is_bitwise_identical(self, scenario, tmp_path, n_shards):
        model, trace, config = scenario
        reference = run_full(model, trace, config, n_shards)
        split = len(trace.epochs()) // 2
        path = tmp_path / f"ck{n_shards}"
        prefix = checkpoint_at(model, trace, config, n_shards, split, path)
        runtime, manifest = restore_runtime(path, model)
        assert manifest.epochs_processed == split
        sink = runtime.run(trace.epochs(start=split))
        assert_bitwise_equal(prefix + sink.events, reference)

    def test_resume_with_compression_is_bitwise_identical(self, scenario, tmp_path):
        from dataclasses import replace

        from repro.config import ArenaConfig

        model, trace, _ = scenario
        config = replace(
            InferenceConfig(
                reader_particles=50, object_particles=100, seed=5
            ).with_compression(unread_epochs=3),
            arena=ArenaConfig(initial_capacity=128, compaction_threshold=0.1),
        )
        reference = run_full(model, trace, config, 1)
        split = int(len(trace.epochs()) * 0.7)
        path = tmp_path / "ck"
        prefix = checkpoint_at(model, trace, config, 1, split, path)
        manifest = load_checkpoint(path)
        assert manifest.shard_states[0]["engine"]["arena_stats"]["compactions"] > 0
        runtime, _ = restore_runtime(path, model)
        sink = runtime.run(trace.epochs(start=split))
        assert_bitwise_equal(prefix + sink.events, reference)

    def test_restored_runtime_reports_offsets(self, scenario, tmp_path):
        model, trace, config = scenario
        split = 20
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 2, split, path)
        runtime, manifest = restore_runtime(path, model)
        assert runtime.epochs_processed == split
        assert runtime.bus.last_time == manifest.bus_last_time
        assert runtime.known_objects()  # beliefs came back

    def test_restore_into_custom_bus(self, scenario, tmp_path):
        model, trace, config = scenario
        split = 20
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 2, split, path)
        times = []
        bus = EventBus()
        bus.subscribe(lambda e: times.append(e.time))
        runtime, manifest = restore_runtime(path, model, bus=bus)
        runtime.run(trace.epochs(start=split))
        assert times == sorted(times)
        assert all(
            manifest.bus_last_time is None or t >= manifest.bus_last_time
            for t in times
        )


class TestElasticReshard:
    def test_reshard_4_to_2_within_tolerance(self, scenario, tmp_path):
        """The acceptance criterion: a 4-shard checkpoint restored into 2
        shards completes the trace with the exact (time, tag) stream and
        positions within the sharded-parity tolerance."""
        model, trace, config = scenario
        reference = run_full(model, trace, config, 1)
        split = len(trace.epochs()) // 2
        path = tmp_path / "ck4"
        prefix = checkpoint_at(model, trace, config, 4, split, path)
        runtime, manifest = restore_runtime(
            path, model, runtime_config=RuntimeConfig(n_shards=2)
        )
        assert manifest.n_shards == 4 and runtime.n_shards == 2
        sink = runtime.run(trace.epochs(start=split))
        resumed = prefix + sink.events
        assert sorted((e.time, str(e.tag)) for e in resumed) == sorted(
            (e.time, str(e.tag)) for e in reference
        )
        by_key = {(e.time, e.tag): np.asarray(e.position) for e in reference}
        for event in resumed:
            ref = by_key[(event.time, event.tag)]
            drift = float(
                np.hypot(event.position[0] - ref[0], event.position[1] - ref[1])
            )
            assert drift < 0.6, f"{event.tag} drifted {drift:.3f} ft"
        # Every new shard owns part of the population.
        counts = [s["objects"] for s in runtime.shard_stats()]
        assert all(c > 0 for c in counts) and sum(counts) == 8

    def test_reshard_2_to_4_scales_out(self, scenario, tmp_path):
        model, trace, config = scenario
        reference = run_full(model, trace, config, 1)
        split = len(trace.epochs()) // 2
        path = tmp_path / "ck2"
        prefix = checkpoint_at(model, trace, config, 2, split, path)
        runtime, _ = restore_runtime(
            path, model, runtime_config=RuntimeConfig(n_shards=4)
        )
        sink = runtime.run(trace.epochs(start=split))
        resumed = prefix + sink.events
        assert sorted((e.time, str(e.tag)) for e in resumed) == sorted(
            (e.time, str(e.tag)) for e in reference
        )
        by_key = {(e.time, e.tag): np.asarray(e.position) for e in reference}
        for event in resumed:
            ref = by_key[(event.time, event.tag)]
            assert (
                float(np.hypot(event.position[0] - ref[0], event.position[1] - ref[1]))
                < 0.6
            )

    def test_reshard_is_deterministic(self, scenario, tmp_path):
        model, trace, config = scenario
        split = len(trace.epochs()) // 2
        path = tmp_path / "ck"
        checkpoint_at(model, trace, config, 4, split, path)
        runs = []
        for _ in range(2):
            runtime, _ = restore_runtime(
                path, model, runtime_config=RuntimeConfig(n_shards=2)
            )
            runs.append(runtime.run(trace.epochs(start=split)).events)
        assert_bitwise_equal(runs[0], runs[1])


class TestPeriodicCheckpoints:
    def test_periodic_rotation_and_resume(self, scenario, tmp_path):
        model, trace, config = scenario
        reference = run_full(model, trace, config, 2)
        directory = tmp_path / "periodic"
        runtime_config = RuntimeConfig(
            n_shards=2,
            checkpoint_every_s=10.0,
            checkpoint_dir=str(directory),
            checkpoint_keep=2,
        )
        runtime = ShardedRuntime(model, config, runtime_config, POLICY)
        runtime.run(trace.epochs())
        kept = sorted(
            name for name in os.listdir(directory) if name.startswith("epoch_")
        )
        assert len(kept) == 2  # rotation pruned the older ones
        latest = latest_checkpoint(directory)
        assert latest is not None and os.path.basename(latest) == kept[-1]
        # Crash-recovery drill: resume from the latest periodic checkpoint
        # and check the tail matches the uninterrupted run bitwise.
        manifest = load_checkpoint(latest)
        resumed, _ = restore_runtime(latest, model)
        sink = resumed.run(trace.epochs(start=manifest.epochs_processed))
        tail = [e for e in reference if e.time > (manifest.bus_last_time or -1)]
        assert_bitwise_equal(sink.events, tail)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(checkpoint_every_s=0.0, checkpoint_dir="x")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(checkpoint_every_s=5.0)  # no directory
        with pytest.raises(ConfigurationError):
            RuntimeConfig(checkpoint_keep=0)

    def test_rotate_checkpoints_orders_by_epoch(self, tmp_path):
        for n in (3, 1, 12):
            os.makedirs(tmp_path / f"epoch_{n:08d}")
        removed = rotate_checkpoints(tmp_path, keep=1)
        assert [os.path.basename(p) for p in removed] == [
            "epoch_00000001",
            "epoch_00000003",
        ]
        assert sorted(os.listdir(tmp_path)) == ["epoch_00000012"]

    def test_rotate_keeps_everything_when_keep_exceeds_count(self, tmp_path):
        """keep larger than the number of checkpoints on disk must delete
        nothing (a negative slice once deleted from the wrong end)."""
        for n in (1, 2, 3):
            os.makedirs(tmp_path / f"epoch_{n:08d}")
        assert rotate_checkpoints(tmp_path, keep=5) == []
        assert len(list(tmp_path.iterdir())) == 3

    @staticmethod
    def _fake_checkpoint(directory, n, kind, parent=None, base=None):
        name = f"epoch_{n:08d}"
        os.makedirs(directory / name)
        manifest = {"format": "repro-checkpoint", "version": FORMAT_VERSION, "kind": kind}
        if parent is not None:
            manifest["parent"] = f"epoch_{parent:08d}"
        if base is not None:
            manifest["base"] = f"epoch_{base:08d}"
        (directory / name / "manifest.json").write_text(json.dumps(manifest))
        return name

    def test_rotation_never_deletes_a_base_a_retained_chain_needs(self, tmp_path):
        """The rotation guard: a full base (and every intermediate delta)
        that a retained delta still chains through is kept no matter how
        old; once a later rebase frees the chain, the stragglers go."""
        self._fake_checkpoint(tmp_path, 1, "full")
        self._fake_checkpoint(tmp_path, 2, "delta", parent=1, base=1)
        self._fake_checkpoint(tmp_path, 3, "delta", parent=2, base=1)
        # keep=1 retains only epoch_3, whose chain needs 2 and 1: nothing
        # may be deleted.
        assert rotate_checkpoints(tmp_path, keep=1) == []
        assert len([n for n in os.listdir(tmp_path) if n.startswith("epoch_")]) == 3
        # A full rebase plus one delta on top frees the old chain.
        self._fake_checkpoint(tmp_path, 4, "full")
        self._fake_checkpoint(tmp_path, 5, "delta", parent=4, base=4)
        removed = rotate_checkpoints(tmp_path, keep=2)
        assert sorted(os.path.basename(p) for p in removed) == [
            "epoch_00000001",
            "epoch_00000002",
            "epoch_00000003",
        ]
        assert sorted(
            n for n in os.listdir(tmp_path) if n.startswith("epoch_")
        ) == ["epoch_00000004", "epoch_00000005"]

    def test_rotation_tolerates_concurrently_deleted_victim(
        self, tmp_path, monkeypatch
    ):
        """A rotation victim vanishing mid-delete (a drain-time rotation
        racing the periodic one) is success, not failure."""
        import repro.state.checkpoint as checkpoint_module

        for n in (1, 2, 3):
            os.makedirs(tmp_path / f"epoch_{n:08d}")
        real_rmtree = checkpoint_module.shutil.rmtree

        def racing_rmtree(path, *args, **kwargs):
            if os.path.basename(str(path)) == "epoch_00000001":
                real_rmtree(path)  # the other rotation got there first
                raise FileNotFoundError(path)
            return real_rmtree(path, *args, **kwargs)

        monkeypatch.setattr(checkpoint_module.shutil, "rmtree", racing_rmtree)
        removed = rotate_checkpoints(tmp_path, keep=1)
        assert [os.path.basename(p) for p in removed] == ["epoch_00000002"]
        assert sorted(os.listdir(tmp_path)) == ["epoch_00000003"]

    def test_latest_checkpoint_survives_a_torn_pointer(self, tmp_path):
        """A kill -9 can leave LATEST empty (torn mid-write) or pointing at
        a checkpoint that never finished its rename; completed checkpoints
        are crash-consistent, so resolution falls back to the newest one."""
        self._fake_checkpoint(tmp_path, 3, "full")
        self._fake_checkpoint(tmp_path, 5, "full")
        os.makedirs(tmp_path / "epoch_00000007.tmp")  # torn mid-save

        (tmp_path / "LATEST").write_text("")  # torn mid-write
        latest = latest_checkpoint(tmp_path)
        assert latest is not None
        assert os.path.basename(latest) == "epoch_00000005"

        (tmp_path / "LATEST").write_text("epoch_00000099\n")  # dangling
        assert os.path.basename(latest_checkpoint(tmp_path)) == "epoch_00000005"

        (tmp_path / "LATEST").write_text("epoch_00000003\n")  # intact wins
        assert os.path.basename(latest_checkpoint(tmp_path)) == "epoch_00000003"

    def test_latest_checkpoint_missing_pointer_finds_completed_save(self, tmp_path):
        """The crash window between a checkpoint's rename and the pointer
        move: no LATEST at all, but a complete checkpoint on disk."""
        self._fake_checkpoint(tmp_path, 2, "full")
        assert os.path.basename(latest_checkpoint(tmp_path)) == "epoch_00000002"
        assert latest_checkpoint(tmp_path / "missing") is None
        (tmp_path / "epoch_00000002" / "manifest.json").unlink()
        assert latest_checkpoint(tmp_path) is None

    def test_rotation_guard_end_to_end_with_periodic_deltas(
        self, scenario, tmp_path
    ):
        """keep=1 with a live delta chain: the base survives rotation and
        the LATEST delta still materializes after every rotation pass."""
        model, trace, config = scenario
        runtime_config = RuntimeConfig(
            n_shards=2,
            checkpoint_every_s=8.0,
            checkpoint_dir=str(tmp_path),
            checkpoint_keep=1,
            checkpoint_mode="delta",
            checkpoint_full_every=4,
        )
        runtime = ShardedRuntime(model, config, runtime_config, POLICY)
        runtime.run(trace.epochs())
        names = sorted(
            n for n in os.listdir(tmp_path) if n.startswith("epoch_")
        )
        kinds = {
            n: json.loads((tmp_path / n / "manifest.json").read_text()).get("kind")
            for n in names
        }
        latest = latest_checkpoint(tmp_path)
        manifest = load_checkpoint(latest)  # materializes: chain is whole
        if manifest.kind == "delta":
            for link in manifest.chain:
                assert link in kinds  # every ancestor survived rotation
            assert kinds[manifest.chain[0]] == "full"


class TestBusResume:
    def test_resume_seeds_watermark(self):
        from repro.streams.records import LocationEvent, TagId

        bus = EventBus()
        bus.resume_from(40.0)
        with pytest.raises(StreamError):
            bus.publish(
                LocationEvent(time=39.0, tag=TagId.object(0), position=(0, 0, 0))
            )
        bus.publish(LocationEvent(time=41.0, tag=TagId.object(0), position=(0, 0, 0)))
        with pytest.raises(StreamError):
            bus.resume_from(50.0)  # already in use

    def test_resume_on_closed_bus_rejected(self):
        bus = EventBus()
        bus.close()
        with pytest.raises(StreamError):
            bus.resume_from(1.0)


class TestEpochSeek:
    def test_epochs_start_offset(self, scenario):
        _, trace, _ = scenario
        epochs = trace.epochs()
        assert trace.epochs(start=10) == epochs[10:]
        assert trace.epochs(start=0) == epochs
        assert trace.epochs(start=len(epochs)) == []
        with pytest.raises(StreamError):
            trace.epochs(start=-1)


class TestShardStats:
    def test_arena_health_in_shard_stats_and_harness(self, scenario):
        from repro.eval.harness import run_sharded

        model, trace, config = scenario
        result = run_sharded(
            trace, model, config, RuntimeConfig(n_shards=2), POLICY
        )
        for key in ("arena_grows", "arena_compactions", "arena_memory_bytes"):
            assert key in result.extra
            assert f"shard0_{key}" in result.extra
            assert f"shard1_{key}" in result.extra
        assert result.extra["arena_memory_bytes"] > 0
        assert result.extra["arena_memory_bytes"] == (
            result.extra["shard0_arena_memory_bytes"]
            + result.extra["shard1_arena_memory_bytes"]
        )
