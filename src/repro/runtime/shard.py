"""One filter shard: an independent engine + cleaning pipeline + buffer.

A shard is the unit of horizontal scale: it owns a partition of the object
tags and runs the full single-engine stack over them — its own particle
filter (own arena, own RNG stream), its own
:class:`~repro.inference.pipeline.CleaningPipeline` with its own visit
bookkeeping.  Nothing is shared between shards except the read-only world
model, which is why the runtime can step them in any order or concurrently.

Events emitted during a step land in a private buffer that the runtime
drains after all shards have advanced, so the cross-shard merge happens in
one place (:class:`~repro.runtime.runtime.ShardedRuntime`) with the full
epoch's output in hand.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import OutputPolicyConfig
from ..errors import StateError
from ..inference.pipeline import CleaningPipeline, InferenceEngine
from ..streams.records import Epoch, LocationEvent
from ..streams.sinks import CollectingSink


class FilterShard:
    """One partition's engine, pipeline, and drainable event buffer."""

    def __init__(
        self,
        index: int,
        engine: InferenceEngine,
        policy: OutputPolicyConfig = OutputPolicyConfig(),
    ):
        self.index = index
        self.engine = engine
        self._buffer = CollectingSink()
        self.pipeline = CleaningPipeline(engine, policy, self._buffer)

    def step(self, epoch: Epoch) -> None:
        self.pipeline.step(epoch)

    def finish(self) -> None:
        self.pipeline.finish()

    # Engine queries, exposed at the shard boundary so callers (the runtime,
    # the state layer) never reach into ``.engine`` — the process executor's
    # ShardWorkerProxy implements this same surface over a pipe.
    def known_objects(self) -> List[int]:
        return self.engine.known_objects()

    def object_estimate(self, number: int):
        return self.engine.object_estimate(number)

    def drain(self) -> List[LocationEvent]:
        """Take (and clear) the events buffered since the last drain."""
        buffered = self._buffer.events
        if not buffered:
            return []
        self._buffer.events = []
        return buffered

    def stats(self) -> Dict[str, float]:
        """Per-shard diagnostics for the harness and benchmarks.

        Arena fields appear only for engines that expose an arena (the
        factored filter); the naive filter still reports object counts.
        """
        engine = self.engine
        row: Dict[str, float] = {
            "shard": float(self.index),
            "objects": float(len(engine.known_objects())),
        }
        active = getattr(engine, "active_count", None)
        if active is not None:
            row["active_count"] = float(active)
        arena = getattr(engine, "arena", None)
        if arena is not None:
            row["arena_used_rows"] = float(arena.used_rows)
            row["arena_capacity"] = float(arena.capacity)
            row["arena_grows"] = float(arena.stats.get("grows", 0))
            row["arena_compactions"] = float(arena.stats.get("compactions", 0))
            row["arena_memory_bytes"] = float(arena.memory_bytes())
        memory = getattr(engine, "belief_memory_bytes", None)
        if callable(memory):
            row["belief_memory_bytes"] = float(memory())
        engine_stats = getattr(engine, "stats", None)
        if isinstance(engine_stats, dict):
            for key in (
                "objects_skipped",
                "objects_skipped_settled",
                "compressions",
                "decompressions",
                "budget_decays",
                "budget_revives",
            ):
                if key in engine_stats:
                    row[key] = float(engine_stats[key])
        tiers = getattr(engine, "tier_summary", None)
        if callable(tiers):
            for key, value in tiers().items():
                row[key] = float(value)
        return row

    # ------------------------------------------------------------------
    # Snapshot / restore (the durable-state subsystem, ``repro.state``)
    # ------------------------------------------------------------------
    def snapshot(self, mode: str = "full") -> Dict[str, dict]:
        """Capture the shard's mutable state (engine + pipeline).

        ``mode="delta"`` captures only the changes since the previous
        capture — the differential-checkpoint path (``repro.state``); it
        requires an engine whose ``snapshot_state`` accepts a mode.

        Checkpoints are taken at epoch boundaries *after* the runtime drained
        the event buffer; a non-empty buffer means events would be lost, so
        it is an error, not a silent drop.
        """
        capture = getattr(self.engine, "snapshot_state", None)
        if not callable(capture):
            raise StateError(
                f"engine {type(self.engine).__name__} does not support "
                "state capture (no snapshot_state method)"
            )
        if self._buffer.events:
            raise StateError(
                f"shard {self.index} has {len(self._buffer.events)} undrained "
                "events; checkpoint only at epoch boundaries after a merge"
            )
        if mode == "full":
            engine_state = capture()
        else:
            try:
                engine_state = capture(mode=mode)
            except TypeError:
                raise StateError(
                    f"engine {type(self.engine).__name__} does not support "
                    f"{mode!r} state capture"
                ) from None
        return {
            "engine": engine_state,
            "pipeline": self.pipeline.snapshot_state(mode=mode),
        }

    def restore(self, state: Dict[str, dict]) -> None:
        apply = getattr(self.engine, "restore_state", None)
        if not callable(apply):
            raise StateError(
                f"engine {type(self.engine).__name__} does not support "
                "state restore (no restore_state method)"
            )
        apply(state["engine"])
        self.pipeline.restore_state(state["pipeline"])
