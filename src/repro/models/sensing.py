"""Reader location sensing model (Section III-A).

The positioning system (ultrasound, indoor GPS, or a robot's dead reckoning)
reports ``R̂_t = R_t + eta`` with ``eta ~ N(mu_s, Sigma_s)`` (diagonal).  A
non-zero ``mu_s`` captures *systematic* error — the paper's robot "drifted
significantly away from the reported location" along the scan axis, which is
exactly the Fig 5(g) experiment — while ``Sigma_s`` captures the random
jitter.  The paper argues a richer noise model is unnecessary because shelf
tags correct residual location error during inference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SensingNoiseParams:
    """Mean and per-axis std-dev of the location-sensing noise."""

    mean: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    sigma: Tuple[float, float, float] = (0.01, 0.01, 0.0)

    def __post_init__(self) -> None:
        if len(self.mean) != 3 or len(self.sigma) != 3:
            raise ConfigurationError("mean and sigma must be 3-vectors")
        if any(s < 0 for s in self.sigma):
            raise ConfigurationError("sigma components must be non-negative")
        if not all(math.isfinite(v) for v in self.mean):
            raise ConfigurationError(f"non-finite mean {self.mean}")

    @property
    def mean_array(self) -> np.ndarray:
        return np.asarray(self.mean, dtype=float)

    @property
    def sigma_array(self) -> np.ndarray:
        return np.asarray(self.sigma, dtype=float)


class LocationSensingModel:
    """Scores reported locations against true-location hypotheses."""

    #: Std-dev substituted for exactly-zero axes when scoring, so that a
    #: deterministic axis does not produce infinite log-densities under
    #: floating-point jitter.
    _MIN_SIGMA = 1e-6

    def __init__(self, params: SensingNoiseParams = SensingNoiseParams()):
        self.params = params

    def observe(self, true_position: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample a reported location for a true position (generative use)."""
        noise = rng.normal(0.0, 1.0, size=3) * self.params.sigma_array
        return np.asarray(true_position, dtype=float) + self.params.mean_array + noise

    def log_likelihood(
        self, reported: np.ndarray, true_positions: np.ndarray
    ) -> np.ndarray:
        """log p(R̂ | R) for a batch of true-position hypotheses.

        ``reported`` is the single reported location for the epoch;
        ``true_positions`` an ``(n, 3)`` batch of reader-particle positions.
        """
        reported = np.asarray(reported, dtype=float)
        residual = reported[None, :] - true_positions - self.params.mean_array[None, :]
        sigma = np.maximum(self.params.sigma_array, self._MIN_SIGMA)
        z = residual / sigma[None, :]
        # Degenerate-z scenes: ignore axes where both sigma is ~0 and the
        # residual is ~0, otherwise they dominate with huge z-scores.
        log_norm = -np.log(sigma * math.sqrt(2.0 * math.pi))
        per_axis = -0.5 * z * z + log_norm[None, :]
        degenerate = (self.params.sigma_array < self._MIN_SIGMA) & (
            np.abs(residual).max(axis=0) < 1e-9
        )
        per_axis[:, degenerate] = 0.0
        return per_axis.sum(axis=1)

    def corrected(self, reported: np.ndarray) -> np.ndarray:
        """Best single-point guess of the true location from a report alone:
        subtract the systematic bias.  Used when the motion model is switched
        off (the Fig 5(g) "motion model Off" baseline *doesn't* do this —
        it trusts the report verbatim — but learned-parameter variants do)."""
        return np.asarray(reported, dtype=float) - self.params.mean_array
