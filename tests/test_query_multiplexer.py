"""Multiplexed standing-query serving: dedup, incremental parity, caching,
checkpointed operator state, and zero-copy read views.

The multiplexer's contract is *byte-identical single-query semantics* at
near-flat marginal cost per additional standing query.  Parity tests
compare every output tuple (time + values, in emission order) against the
stock :class:`QueryEngine` over the same stream; the perf claims live in
``benchmarks/bench_query_serving.py``.
"""

import numpy as np
import pytest

from repro.config import InferenceConfig, OutputPolicyConfig, RuntimeConfig
from repro.errors import QueryError, StateError
from repro.query import (
    ContinuousQuery,
    MultiplexedQueryEngine,
    QueryEngine,
    fire_code_query,
    location_update_query,
    queries_from_spec,
    standing_region_queries,
)
from repro.query.relops import GroupBy, Project, RegionSelect, Select, count_
from repro.query.stream_ops import Dstream, Istream, Rstream
from repro.query.tuples import StreamTuple
from repro.query.windows import (
    NowWindow,
    PartitionRowsWindow,
    RangeWindow,
    UnboundedWindow,
)


def tup(t, **values):
    return StreamTuple(t, values)


def random_stream(n_ticks=30, n_tags=12, seed=0):
    """Tag positions random-walking over a 20x20 floor, several per tick."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, 20.0, size=(n_tags, 2))
    ticks = []
    for k in range(n_ticks):
        time = float(k)
        moving = rng.choice(n_tags, size=rng.integers(1, n_tags // 2 + 1), replace=False)
        batch = []
        for i in moving:
            pos[i] = np.clip(pos[i] + rng.normal(0.0, 1.5, 2), 0.0, 20.0)
            batch.append(
                tup(
                    time,
                    tag_id=f"object:{i}",
                    x=float(pos[i][0]),
                    y=float(pos[i][1]),
                    z=0.0,
                )
            )
        ticks.append((time, batch))
    return ticks


def feed(engine, ticks):
    for _, batch in ticks:
        for t in batch:
            engine.push(t)
    engine.finish()
    return engine


def outputs_of(engine):
    return {
        name: [(t.time, tuple(sorted(t.items()))) for t in tuples]
        for name, tuples in engine.outputs.items()
    }


def standard_queries(n_regions=25):
    queries = [location_update_query(), fire_code_query(lambda _: 90.0, 200.0, 5.0)]
    queries += standing_region_queries(n_regions, ((0.0, 0.0), (20.0, 20.0)))
    return queries


def tree_equal(a, b, path=""):
    """First differing path between two state trees (None if equal);
    compares dict key order, sequence contents, and leaf values."""
    if isinstance(a, dict) and isinstance(b, dict):
        if list(a) != list(b):
            return f"{path}: keys {list(a)} != {list(b)}"
        for key in a:
            diff = tree_equal(a[key], b[key], f"{path}/{key}")
            if diff:
                return diff
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = tree_equal(x, y, f"{path}/{i}")
            if diff:
                return diff
        return None
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, np.ndarray):
        if not np.array_equal(a, b):
            return f"{path}: arrays differ"
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


class TestWindowDedup:
    def test_identical_windows_share_one_operator(self):
        engine = MultiplexedQueryEngine()
        for q in standing_region_queries(10, ((0.0, 0.0), (20.0, 20.0))):
            engine.register(q)
        stats = engine.stats()
        assert stats["shared_windows"] == 1
        assert stats["windows_deduped"] == 9

    def test_signature_distinguishes_parameters(self):
        engine = MultiplexedQueryEngine()
        engine.register(ContinuousQuery(RangeWindow(30.0), name="a"))
        engine.register(ContinuousQuery(RangeWindow(30.0), name="b"))
        engine.register(ContinuousQuery(RangeWindow(20.0), name="c"))
        engine.register(ContinuousQuery(NowWindow(), name="d"))
        engine.register(ContinuousQuery(UnboundedWindow(), name="e"))
        engine.register(
            ContinuousQuery(PartitionRowsWindow(("tag_id",), 1), name="f")
        )
        engine.register(
            ContinuousQuery(PartitionRowsWindow(("tag_id",), 2), name="g")
        )
        # a+b share; c, d, e, f, g are all structurally distinct.
        assert engine.stats()["shared_windows"] == 6
        assert engine.stats()["windows_deduped"] == 1

    def test_window_subclass_never_shared(self):
        class CustomWindow(RangeWindow):
            pass

        assert CustomWindow(30.0).signature() is None
        engine = MultiplexedQueryEngine()
        engine.register(ContinuousQuery(CustomWindow(30.0), name="a"))
        engine.register(ContinuousQuery(CustomWindow(30.0), name="b"))
        assert engine.stats()["shared_windows"] == 2
        assert engine.stats()["windows_deduped"] == 0

    def test_late_registration_gets_fresh_window(self):
        """A query registered mid-stream must not adopt another query's
        window history — stock semantics: its window starts empty and fills
        from the tick pending at registration onward."""
        ticks = random_stream(n_ticks=12, seed=3)

        def shape(name):
            return ContinuousQuery(
                PartitionRowsWindow(("tag_id",), 1),
                [RegionSelect((0.0, 0.0), (20.0, 20.0)), Project("tag_id", "x", "y")],
                Istream(),
                name=name,
            )

        engines = (MultiplexedQueryEngine(), QueryEngine())
        for engine in engines:
            engine.register(shape("early"))
            for _, batch in ticks[:6]:
                for t in batch:
                    engine.push(t)
            engine.register(shape("late"))
            for _, batch in ticks[6:]:
                for t in batch:
                    engine.push(t)
            engine.finish()
        mux, stock = engines
        assert mux.stats()["shared_windows"] == 2  # no history adoption
        assert outputs_of(mux) == outputs_of(stock)
        # And the late query really did miss the early ticks.
        late_times = {time for time, _ in outputs_of(mux)["late"]}
        early_times = {time for time, _ in outputs_of(mux)["early"]}
        assert min(late_times) > min(early_times)


class TestIncrementalParity:
    """Incremental change-list serving vs the stock full re-scan path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_standard_query_mix_byte_identical(self, seed):
        ticks = random_stream(n_ticks=30, seed=seed)
        naive = QueryEngine()
        mux = MultiplexedQueryEngine()
        for q in standard_queries():
            naive.register(q)
        for q in standard_queries():
            mux.register(q)
        feed(naive, ticks)
        feed(mux, ticks)
        assert outputs_of(mux) == outputs_of(naive)
        stats = mux.stats()
        assert stats["windows_deduped"] >= 24
        assert stats["emissions_suppressed"] > 0

    @pytest.mark.parametrize(
        "streamer_cls", [Istream, Rstream, Dstream]
    )
    def test_every_streamer_parity(self, streamer_cls):
        def build():
            return [
                ContinuousQuery(
                    PartitionRowsWindow(("tag_id",), 1),
                    [RegionSelect((5.0, 5.0), (15.0, 15.0)), Project("tag_id", "x", "y")],
                    streamer_cls(),
                    name="q_region",
                ),
                ContinuousQuery(
                    RangeWindow(8.0),
                    [GroupBy((), [count_()])],
                    streamer_cls(),
                    name="q_agg",
                ),
                ContinuousQuery(
                    NowWindow(),
                    [Select(lambda t: t["x"] > 10.0)],
                    streamer_cls(),
                    name="q_now",
                ),
            ]

        ticks = random_stream(n_ticks=25, seed=7)
        naive = QueryEngine()
        mux = MultiplexedQueryEngine()
        for q in build():
            naive.register(q)
        for q in build():
            mux.register(q)
        feed(naive, ticks)
        feed(mux, ticks)
        assert outputs_of(mux) == outputs_of(naive)

    def test_region_grid_pass_matches_linear_filter(self):
        """Grid-indexed candidates (sorted by first-seen rank) reproduce the
        relation-scan order restricted to the region."""
        ticks = random_stream(n_ticks=20, n_tags=20, seed=11)
        mux_grid = MultiplexedQueryEngine(grid_cell=2.0)
        mux_linear = MultiplexedQueryEngine(max_region_cells=0)  # grid disabled
        for engine in (mux_grid, mux_linear):
            for q in standing_region_queries(16, ((0.0, 0.0), (20.0, 20.0))):
                engine.register(q)
            feed(engine, ticks)
        assert outputs_of(mux_grid) == outputs_of(mux_linear)
        assert mux_grid.stats()["grid_lookups"] > 0
        assert mux_linear.stats()["grid_lookups"] == 0


class TestResultCaching:
    def test_duplicate_queries_answered_from_cache(self):
        """Same-shape queries under different names share one plan key; the
        post-operator relation computes once per window version."""
        ticks = random_stream(n_ticks=15, seed=5)
        engine = MultiplexedQueryEngine()
        ops = [GroupBy((), [count_()])]
        for name in ("a", "b", "c"):
            engine.register(
                ContinuousQuery(RangeWindow(8.0), list(ops), Rstream(), name=name)
            )
        feed(engine, ticks)
        stats = engine.stats()
        assert stats["cache_hits"] > 0
        # Duplicates answered from cache: hits >= 2x misses is the shape
        # (first query misses, the other two hit, per changed tick).
        assert stats["cache_hits"] >= 2 * stats["cache_misses"] - 2
        assert (
            outputs_of(engine)["a"]
            == outputs_of(engine)["b"]
            == outputs_of(engine)["c"]
        )

    def test_cache_invalidated_when_window_changes(self):
        engine = MultiplexedQueryEngine()
        for name in ("a", "b"):
            engine.register(
                ContinuousQuery(
                    PartitionRowsWindow(("tag_id",), 1),
                    [],
                    Rstream(),
                    name=name,
                )
            )
        engine.push(tup(0.0, tag_id="x", x=1.0, y=1.0, z=0.0))
        engine.push(tup(1.0, tag_id="x", x=2.0, y=1.0, z=0.0))
        engine.push(tup(2.0, tag_id="x", x=3.0, y=1.0, z=0.0))
        engine.finish()
        # Every tick changes the window; outputs must track the change, not
        # replay a stale cached relation.
        assert [t["x"] for t in engine.outputs["a"]] == [1.0, 2.0, 3.0]
        assert [t["x"] for t in engine.outputs["b"]] == [1.0, 2.0, 3.0]

    def test_unchanged_window_emits_nothing_without_rescan(self):
        engine = MultiplexedQueryEngine()
        for q in standing_region_queries(9, ((0.0, 0.0), (20.0, 20.0))):
            engine.register(q)
        engine.push(tup(0.0, tag_id="x", x=1.0, y=1.0, z=0.0))
        # Tick 1 moves nothing into any other region: 8 of 9 watchers must
        # be suppressed without touching their plans.
        engine.push(tup(1.0, tag_id="x", x=1.1, y=1.0, z=0.0))
        engine.push(tup(2.0, tag_id="x", x=1.2, y=1.0, z=0.0))
        engine.finish()
        assert engine.emissions_suppressed >= 16

    def test_impure_operator_subclass_disables_caching(self):
        """A Select subclass could do anything in process(); it must be
        served by the general path every tick."""

        calls = []

        class CountingSelect(Select):
            def process(self, time, tuples):
                calls.append(time)
                return super().process(time, tuples)

        engine = MultiplexedQueryEngine()
        engine.register(
            ContinuousQuery(
                NowWindow(),
                [CountingSelect(lambda t: True)],
                Rstream(),
                name="impure",
            )
        )
        engine.push(tup(0.0, v=1))
        engine.push(tup(1.0, v=2))
        engine.push(tup(2.0, v=3))
        engine.finish()
        assert calls == [0.0, 1.0, 2.0]


class TestRegionSelect:
    def test_contains_half_open(self):
        region = RegionSelect((0.0, 0.0), (10.0, 10.0))
        assert region.contains(tup(0.0, x=0.0, y=0.0))
        assert not region.contains(tup(0.0, x=10.0, y=5.0))
        assert region.region_key() == ("region", ("x", "y"), (0.0, 0.0), (10.0, 10.0))

    def test_degenerate_region_rejected(self):
        with pytest.raises(QueryError):
            RegionSelect((0.0, 0.0), (0.0, 10.0))
        with pytest.raises(QueryError):
            RegionSelect((0.0,), (10.0, 10.0))


class TestQueryBuilders:
    def test_standing_region_queries_tile_bounds(self):
        queries = standing_region_queries(7, ((0.0, 0.0), (10.0, 10.0)))
        assert len(queries) == 7
        assert len({q.name for q in queries}) == 7

    def test_queries_from_spec(self):
        queries = queries_from_spec(
            [
                {"kind": "region", "name": "dock", "lo": [0, 0], "hi": [10, 5]},
                {"kind": "location_updates", "name": "moves"},
            ]
        )
        assert [q.name for q in queries] == ["dock", "moves"]
        with pytest.raises(QueryError, match="unknown standing-query kind"):
            queries_from_spec([{"kind": "nope"}])


class TestOperatorStateCapture:
    """Snapshot/restore of the multiplexer's operator state: a restored
    engine resumes answers exactly (same emissions, same final state)."""

    @pytest.mark.parametrize("engine_cls", [QueryEngine, MultiplexedQueryEngine])
    def test_exact_resume_mid_tick(self, engine_cls):
        ticks = random_stream(n_ticks=30, seed=13)
        reference = engine_cls()
        resumable = engine_cls()
        for q in standard_queries(n_regions=9):
            reference.register(q)
        for q in standard_queries(n_regions=9):
            resumable.register(q)

        cut_tick, cut_mid = 18, 2  # split inside tick 18's batch
        fed = 0
        state = None
        for k, (_, batch) in enumerate(ticks):
            for j, t in enumerate(batch):
                reference.push(t)
                if state is None:
                    resumable.push(t)
                    if k == cut_tick and j == min(cut_mid, len(batch) - 1):
                        state = resumable.snapshot_state()
                        pre_outputs = outputs_of(resumable)
        reference.finish()

        restored = engine_cls()
        for q in standard_queries(n_regions=9):
            restored.register(q)
        restored.restore_state(state)
        replayed = False
        for k, (_, batch) in enumerate(ticks):
            for j, t in enumerate(batch):
                if not replayed:
                    if k == cut_tick and j == min(cut_mid, len(batch) - 1):
                        replayed = True
                    continue
                restored.push(t)
        restored.finish()

        # Pre-cut emissions plus the restored engine's are the full run's.
        combined = {
            name: pre_outputs.get(name, []) + rows
            for name, rows in outputs_of(restored).items()
        }
        assert combined == outputs_of(reference)
        # Final operator state is bitwise-equal (structurally: same key
        # order, same leaves; pickle bytes differ only by memoized object
        # identity, which is not semantic).
        diff = tree_equal(restored.snapshot_state(), reference.snapshot_state())
        assert diff is None, diff

    def test_restore_rejects_query_name_mismatch(self):
        engine = MultiplexedQueryEngine()
        engine.register(ContinuousQuery(NowWindow(), name="a"))
        state = engine.snapshot_state()
        other = MultiplexedQueryEngine()
        other.register(ContinuousQuery(NowWindow(), name="b"))
        with pytest.raises(StateError, match="registered queries differ"):
            other.restore_state(state)

    def test_restore_rejects_wrong_engine_kind(self):
        plain = QueryEngine()
        plain.register(ContinuousQuery(NowWindow(), name="a"))
        mux = MultiplexedQueryEngine()
        mux.register(ContinuousQuery(NowWindow(), name="a"))
        with pytest.raises(StateError, match="multiplexed"):
            mux.restore_state(plain.snapshot_state())

    def test_restore_rejects_grouping_mismatch(self):
        def shared_pair():
            engine = MultiplexedQueryEngine()
            engine.register(ContinuousQuery(RangeWindow(10.0), name="a"))
            engine.register(ContinuousQuery(RangeWindow(10.0), name="b"))
            return engine

        state = shared_pair().snapshot_state()
        split = MultiplexedQueryEngine()
        split.register(ContinuousQuery(RangeWindow(10.0), name="a"))
        split.push(tup(0.0, v=1))
        split.push(tup(1.0, v=2))  # flush advances the tick counter:
        split.register(ContinuousQuery(RangeWindow(10.0), name="b"))  # fresh window
        with pytest.raises(StateError, match="share one window|window group"):
            split.restore_state(state)


class TestZeroCopyReadViews:
    def _runtime(self, small_warehouse, executor="serial"):
        from repro.runtime import ShardedRuntime

        trace = small_warehouse.generate()
        model = small_warehouse.world_model()
        config = InferenceConfig(reader_particles=40, object_particles=80, seed=3)
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(n_shards=2, executor=executor),
            OutputPolicyConfig(delay_s=15.0),
        )
        return runtime, trace

    def test_serial_views_share_arena_memory(self, small_warehouse):
        runtime, trace = self._runtime(small_warehouse)
        try:
            for epoch in trace.epochs()[:20]:
                runtime.step(epoch)
            view = runtime.read_view()
            numbers = view.object_ids()
            assert numbers, "no beliefs after 20 epochs"
            number = numbers[0]
            shard = runtime.shards[runtime.router.shard_of(number)]
            assert np.shares_memory(
                view.positions(number), shard.engine.arena.positions(number)
            )
            mean = view.mean(number)
            assert mean.shape == (3,) and np.isfinite(mean).all()
        finally:
            runtime.abort()

    def test_stale_view_raises_after_advance(self, small_warehouse):
        runtime, trace = self._runtime(small_warehouse)
        try:
            epochs = trace.epochs()
            for epoch in epochs[:10]:
                runtime.step(epoch)
            view = runtime.read_view()
            numbers = view.object_ids()
            runtime.step(epochs[10])
            assert not view.valid
            with pytest.raises(StateError, match="stale read view"):
                view.positions(numbers[0])
            fresh = runtime.read_view()
            assert fresh.valid
            fresh.close()
            with pytest.raises(StateError, match="closed"):
                fresh.positions(numbers[0])
        finally:
            runtime.abort()

    def test_process_executor_views_read_shared_slabs(self, small_warehouse):
        runtime, trace = self._runtime(small_warehouse, executor="process")
        try:
            for epoch in trace.epochs()[:20]:
                runtime.step(epoch)
            view = runtime.read_view()
            numbers = view.object_ids()
            assert numbers
            for number in numbers:
                positions = view.positions(number)
                assert positions.ndim == 2 and positions.shape[1] == 3
                assert np.isfinite(view.mean(number)).all()
            view.close()
        finally:
            runtime.abort()

    def test_belief_mean_through_engine(self, small_warehouse):
        runtime, trace = self._runtime(small_warehouse)
        engine = MultiplexedQueryEngine()
        from repro.runtime import QueryBridge

        QueryBridge(engine, runtime.bus, runtime=runtime)
        try:
            epochs = trace.epochs()
            for epoch in epochs[:10]:
                runtime.step(epoch)
            numbers = runtime.read_view().object_ids()
            first = engine.belief_mean(numbers[0])
            again = engine.belief_mean(numbers[0])
            assert np.array_equal(first, again)
            assert engine.read_view_refreshes == 1  # second read reused the view
            runtime.step(epochs[10])
            engine.belief_mean(numbers[0])
            assert engine.read_view_refreshes == 2  # epoch advanced: refreshed
            assert engine.belief_reads == 3
        finally:
            runtime.abort()

    def test_unbound_belief_mean_raises(self):
        engine = MultiplexedQueryEngine()
        with pytest.raises(QueryError, match="bind_read_views"):
            engine.belief_mean(1)
