"""Tests for the continuous-query executor."""

import pytest

from repro.errors import QueryError
from repro.query.engine import ContinuousQuery, QueryEngine
from repro.query.relops import Extend, Select
from repro.query.stream_ops import Istream, Rstream
from repro.query.tuples import StreamTuple
from repro.query.windows import NowWindow, RangeWindow


def tup(t, **values):
    return StreamTuple(t, values)


class TestContinuousQuery:
    def test_window_ops_streamer_chain(self):
        q = ContinuousQuery(
            window=NowWindow(),
            operators=[Select(lambda t: t["v"] > 0), Extend(double=lambda t: t["v"] * 2)],
            streamer=Rstream(),
        )
        out = q.push(0.0, [tup(0.0, v=1), tup(0.0, v=-1)])
        assert len(out) == 1
        assert out[0]["double"] == 2

    def test_nesting_via_then(self):
        inner = ContinuousQuery(NowWindow(), [Extend(w=lambda t: t["v"] * 10)], Rstream())
        outer = ContinuousQuery(RangeWindow(10.0), [], Rstream(), name="outer")
        inner.then(outer)
        inner.push(0.0, [tup(0.0, v=1)])
        out = inner.push(5.0, [tup(5.0, v=2)])
        # Outer window holds both derived tuples.
        assert sorted(t["w"] for t in out) == [10, 20]

    def test_double_then_rejected(self):
        inner = ContinuousQuery(NowWindow())
        inner.then(ContinuousQuery(NowWindow()))
        with pytest.raises(QueryError):
            inner.then(ContinuousQuery(NowWindow()))


class TestQueryEngine:
    def test_ticks_grouped_by_time(self):
        engine = QueryEngine()
        seen_batches = []

        class SpyWindow(NowWindow):
            def push(self, time, batch):
                seen_batches.append((time, len(batch)))
                return super().push(time, batch)

        engine.register(ContinuousQuery(SpyWindow(), name="spy"))
        engine.push(tup(0.0, v=1))
        engine.push(tup(0.0, v=2))
        engine.push(tup(1.0, v=3))
        engine.finish()
        assert seen_batches == [(0.0, 2), (1.0, 1)]

    def test_outputs_collected(self):
        engine = QueryEngine()
        engine.register(ContinuousQuery(NowWindow(), streamer=Istream(), name="q"))
        engine.push(tup(0.0, v=1))
        engine.finish()
        assert len(engine.outputs["q"]) == 1

    def test_callback_invoked(self):
        engine = QueryEngine()
        seen = []
        engine.register(
            ContinuousQuery(NowWindow(), name="q"), callback=seen.append
        )
        engine.push(tup(0.0, v=1))
        engine.finish()
        assert len(seen) == 1

    def test_duplicate_names_rejected(self):
        engine = QueryEngine()
        engine.register(ContinuousQuery(NowWindow(), name="q"))
        with pytest.raises(QueryError):
            engine.register(ContinuousQuery(NowWindow(), name="q"))

    def test_time_regression_rejected(self):
        engine = QueryEngine()
        engine.register(ContinuousQuery(NowWindow(), name="q"))
        engine.push(tup(5.0, v=1))
        with pytest.raises(QueryError):
            engine.push(tup(4.0, v=2))

    def test_advance_to_slides_windows(self):
        engine = QueryEngine()
        engine.register(
            ContinuousQuery(RangeWindow(2.0), streamer=Rstream(), name="q")
        )
        engine.push(tup(0.0, v=1))
        engine.advance_to(10.0)
        # After sliding to t=10, the relation is empty, so the final flush
        # (empty tick) emits nothing.
        outputs = engine.outputs["q"]
        assert [t.time for t in outputs] == [0.0]


class TestAddSink:
    def test_sink_added_after_register_receives_outputs(self):
        engine = QueryEngine()
        engine.register(ContinuousQuery(NowWindow(), name="q"))
        late, early = [], []
        engine.register(
            ContinuousQuery(NowWindow(), name="p"), callback=early.append
        )
        engine.add_sink("q", late.append)
        engine.push(tup(0.0, v=1))
        engine.finish()
        assert len(late) == 1 and len(early) == 1

    def test_multiple_sinks_on_one_query(self):
        engine = QueryEngine()
        engine.register(ContinuousQuery(NowWindow(), name="q"), callback=lambda t: None)
        seen_a, seen_b = [], []
        engine.add_sink("q", seen_a.append)
        engine.add_sink("q", seen_b.append)
        engine.push(tup(0.0, v=1))
        engine.finish()
        assert len(seen_a) == 1 and len(seen_b) == 1

    def test_unknown_query_rejected(self):
        engine = QueryEngine()
        with pytest.raises(QueryError):
            engine.add_sink("nope", lambda t: None)
