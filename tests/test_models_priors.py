"""Tests for sensor-model-based initialization and re-detection logic."""

import math

import numpy as np
import pytest

from repro.config import InferenceConfig
from repro.models.priors import (
    ReinitDecision,
    SensorBasedInitializer,
    classify_redetection,
    config_for_sensor,
    initialization_geometry,
)
from repro.models.sensor import SensorModel, SensorParams


@pytest.fixture
def config():
    return InferenceConfig(
        reader_particles=10,
        object_particles=50,
        reinit_near_ft=4.0,
        reinit_far_ft=8.0,
    )


class TestClassifyRedetection:
    def test_first_sighting_resets(self, config):
        assert classify_redetection(None, config) is ReinitDecision.RESET

    def test_near_keeps(self, config):
        assert classify_redetection(1.0, config) is ReinitDecision.KEEP
        assert classify_redetection(4.0, config) is ReinitDecision.KEEP

    def test_middle_splits(self, config):
        assert classify_redetection(6.0, config) is ReinitDecision.SPLIT

    def test_far_resets(self, config):
        assert classify_redetection(8.0, config) is ReinitDecision.RESET
        assert classify_redetection(50.0, config) is ReinitDecision.RESET


class TestSample:
    def test_samples_in_cone_and_on_shelves(self, config, single_shelf, rng):
        init = SensorBasedInitializer(config, single_shelf)
        pts = init.sample((0.0, 4.0, 0.0), 0.0, 200, rng)
        assert pts.shape == (200, 3)
        assert single_shelf.contains_points(pts).all()
        cone = init.initialization_cone((0.0, 4.0, 0.0), 0.0)
        assert cone.contains(pts).mean() > 0.95

    def test_no_shelves_uses_raw_cone(self, config, rng):
        init = SensorBasedInitializer(config, None)
        pts = init.sample((0.0, 0.0, 0.0), 0.0, 100, rng)
        cone = init.initialization_cone((0.0, 0.0, 0.0), 0.0)
        assert cone.contains(pts).all()

    def test_cone_missing_shelves_falls_back(self, config, single_shelf, rng):
        # Cone pointing away from the shelf (heading pi = -x).
        init = SensorBasedInitializer(config, single_shelf)
        pts = init.sample((0.0, 4.0, 0.0), math.pi, 100, rng)
        assert pts.shape == (100, 3)

    def test_heading_aims_cone(self, config, two_shelves, rng):
        init = SensorBasedInitializer(config, two_shelves)
        forward = init.sample((0.0, 4.0, 0.0), 0.0, 100, rng)
        backward = init.sample((0.0, 4.0, 0.0), math.pi, 100, rng)
        assert (forward[:, 0] > 0).all()
        assert (backward[:, 0] < 0).all()


class TestReinitialize:
    def test_keep_returns_same(self, config, single_shelf, rng):
        init = SensorBasedInitializer(config, single_shelf)
        particles = np.ones((20, 3))
        out = init.reinitialize(particles, ReinitDecision.KEEP, (0, 0, 0), 0.0, rng)
        assert out is particles

    def test_reset_replaces_all(self, config, single_shelf, rng):
        init = SensorBasedInitializer(config, single_shelf)
        particles = np.full((30, 3), 99.0)
        out = init.reinitialize(particles, ReinitDecision.RESET, (0.0, 4.0, 0.0), 0.0, rng)
        assert out.shape == (30, 3)
        assert (np.abs(out) < 50).all()

    def test_split_keeps_half(self, config, single_shelf, rng):
        init = SensorBasedInitializer(config, single_shelf)
        particles = np.full((40, 3), 99.0)
        out = init.reinitialize(particles, ReinitDecision.SPLIT, (0.0, 4.0, 0.0), 0.0, rng)
        assert out.shape == (40, 3)
        kept = (np.abs(out - 99.0).max(axis=1) < 1e-9).sum()
        assert kept == 20


class TestInitializationGeometry:
    def test_narrow_sensor_narrow_cone(self):
        narrow = SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -30.0)))
        wide = SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -2.0)))
        half_n, range_n = initialization_geometry(narrow)
        half_w, range_w = initialization_geometry(wide)
        assert half_n < half_w
        assert range_n == pytest.approx(range_w, rel=0.1)

    def test_range_overestimates(self):
        model = SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -6.0)))
        _, max_range = initialization_geometry(model, overestimate=1.25)
        assert max_range == pytest.approx(model.effective_range(0.05) * 1.25)

    def test_config_for_sensor_updates_thresholds(self, config):
        model = SensorModel(SensorParams(a=(4.0, 0.0, -1.0), b=(0.0, -6.0)))
        out = config_for_sensor(config, model)
        assert out.reinit_near_ft >= out.init_cone_range_ft
        assert out.reinit_far_ft > out.reinit_near_ft
        assert 0 < out.init_cone_half_angle_rad <= math.pi
