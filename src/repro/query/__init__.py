"""CQL-lite continuous query engine (Section II-B): windows, relational
operators, stream operators, the executor, and the paper's two queries."""

from .engine import ContinuousQuery, QueryEngine
from .multiplexer import (
    MultiplexedQueryEngine,
    queries_from_spec,
    standing_region_queries,
)
from .queries import fire_code_query, location_update_query, square_ft_area
from .relops import (
    Aggregate,
    Extend,
    GroupBy,
    Having,
    OrderBy,
    Project,
    RegionSelect,
    RelOp,
    Select,
    avg_,
    count_,
    max_,
    min_,
    sum_,
)
from .stream_ops import Dstream, Istream, Rstream, StreamOp
from .tuples import StreamTuple, tuple_from_event
from .windows import (
    NowWindow,
    PartitionRowsWindow,
    RangeWindow,
    UnboundedWindow,
    Window,
)

__all__ = [
    "Aggregate",
    "ContinuousQuery",
    "Dstream",
    "Extend",
    "GroupBy",
    "Having",
    "Istream",
    "MultiplexedQueryEngine",
    "NowWindow",
    "OrderBy",
    "PartitionRowsWindow",
    "Project",
    "QueryEngine",
    "RangeWindow",
    "RegionSelect",
    "RelOp",
    "Rstream",
    "Select",
    "StreamOp",
    "StreamTuple",
    "UnboundedWindow",
    "Window",
    "avg_",
    "count_",
    "fire_code_query",
    "location_update_query",
    "max_",
    "min_",
    "queries_from_spec",
    "square_ft_area",
    "standing_region_queries",
    "sum_",
    "tuple_from_event",
]
