"""End-to-end ingest-service tests, in-process over a unix socket.

The load-bearing guarantees, each exercised against the batch pipeline as
the reference:

* N concurrent socket sources produce an emission log *byte-identical* to
  running the same trace through ``ShardedRuntime.run`` — the watermark
  aligner reconstructs exactly the batch epoch stream;
* backpressure (credit windows + global PAUSE) bounds server memory under
  a flood without changing a single emitted byte;
* a mid-stream drain (the SIGTERM path) followed by ``resume=True`` and an
  idempotent client re-replay converges on the same byte-identical log.
"""

import asyncio
import json
import os

import pytest

from repro.cli import _default_model
from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
    ServeConfig,
)
from repro.errors import ServeError
from repro.models import config_for_sensor
from repro.query import (
    MultiplexedQueryEngine,
    location_update_query,
    standing_region_queries,
)
from repro.runtime import QueryBridge, ShardedRuntime
from repro.serve import EmissionTail, ReplaySource, ReproService, protocol
from repro.serve.client import fetch_stats_async
from repro.serve.protocol import FrameDecoder
from repro.serve.service import STANDING_BOUNDS, _json_scalar
from repro.serve.sink import encode_emission
from repro.streams.records import TagId, TagReading
from repro.simulation.layout import LayoutConfig
from repro.simulation.truth_sensor import ConeTruthSensor
from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

POLICY = OutputPolicyConfig(delay_s=5.0)


def make_scenario(n_objects, n_rounds, seed):
    simulator = WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(n_objects=n_objects, n_shelf_tags=2),
            sensor=ConeTruthSensor(rr_major=0.9),
            n_rounds=n_rounds,
            seed=seed,
        )
    )
    trace = simulator.generate()
    model, _, sensor = _default_model(trace)
    config = config_for_sensor(
        InferenceConfig(reader_particles=60, object_particles=120), sensor
    )
    return trace, model, config


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(n_objects=6, n_rounds=1, seed=3)


def reference_log(trace, model, config, standing_queries=0):
    """The batch pipeline's emissions, framed exactly like the sink's log."""
    runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
    engine = MultiplexedQueryEngine()
    payloads = []
    queries = [location_update_query()]
    if standing_queries:
        queries.extend(standing_region_queries(standing_queries, STANDING_BOUNDS))
    for query in queries:
        engine.register(
            query,
            callback=lambda tup, name=query.name: payloads.append(
                {
                    "query": name,
                    "time": tup.time,
                    "row": {k: _json_scalar(v) for k, v in sorted(tup.items())},
                }
            ),
        )
    QueryBridge(engine, runtime.bus, runtime=runtime, name="serve")
    runtime.run(trace.epochs())
    return b"".join(
        encode_emission(i, p) + b"\n" for i, p in enumerate(payloads)
    )


@pytest.fixture(scope="module")
def expected_log(scenario):
    trace, model, config = scenario
    return reference_log(trace, model, config)


def make_service(scenario, tmp_path, *, serve=None, runtime=None, **kwargs):
    trace, model, config = scenario
    return ReproService(
        model,
        inference=config,
        runtime=runtime or RuntimeConfig(n_shards=2),
        policy=POLICY,
        serve=serve or ServeConfig(epoch_length=1.0, queue_capacity=64, credit_batch=8),
        socket_path=str(tmp_path / "s.sock"),
        emissions_path=str(tmp_path / "emissions.jsonl"),
        **kwargs,
    )


async def serve_and_replay(service, *clients):
    """Run the service to completion alongside the given client coroutines."""
    ready = asyncio.Event()
    task = asyncio.create_task(service.run_async(ready))
    await ready.wait()
    results = await asyncio.gather(*clients)
    await asyncio.wait_for(task, timeout=60)
    return results


class TestEndToEnd:
    def test_eight_sources_match_batch_pipeline(
        self, scenario, expected_log, tmp_path
    ):
        trace, _, _ = scenario
        service = make_service(scenario, tmp_path)
        replay = ReplaySource(service.socket_path, trace, n_sources=8)
        tail = EmissionTail(service.socket_path, str(tmp_path / "tail.jsonl"))

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            tail_task = asyncio.create_task(tail.run_async())
            report = await replay.run_async()
            await asyncio.wait_for(task, timeout=60)
            received = await asyncio.wait_for(tail_task, timeout=60)
            return report, received

        report, received = asyncio.run(main())

        assert len(report) == 8  # eight concurrent sources actually ran
        total = len(trace.readings) + len(trace.reports)
        assert sum(r["sent"] for r in report.values()) == total

        log = (tmp_path / "emissions.jsonl").read_bytes()
        assert log == expected_log
        assert log  # the scenario emits something, or parity is vacuous

        # The subscriber saw the whole log, gapless, and wrote it verbatim.
        assert received == log.count(b"\n")
        assert (tmp_path / "tail.jsonl").read_bytes() == log

        # Exactly-once bookkeeping: everything appended once, none replayed.
        stats = service.sink.stats()
        assert stats["appended"] == log.count(b"\n")
        assert stats["replay_suppressed"] == 0

    def test_backpressure_bounds_memory_without_changing_bytes(
        self, scenario, expected_log, tmp_path
    ):
        trace, _, _ = scenario
        n_sources = 4
        serve = ServeConfig(
            epoch_length=1.0,
            queue_capacity=16,
            credit_batch=4,
            pause_high_water=12,
            pause_low_water=4,
        )
        service = make_service(scenario, tmp_path, serve=serve)
        replay = ReplaySource(service.socket_path, trace, n_sources=n_sources)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            report = await replay.run_async()
            await asyncio.wait_for(task, timeout=60)
            return report

        report = asyncio.run(main())
        counters = service.ingest.counters

        # The flood actually tripped the brakes, and they released again.
        assert counters.pauses > 0
        assert counters.resumes == counters.pauses
        assert sum(r["pauses_seen"] for r in report.values()) > 0

        # Bounded memory: buffered frames can never exceed the total
        # outstanding credit, no matter how hard the clients push.
        assert counters.peak_buffered <= n_sources * serve.queue_capacity

        # Backpressure is flow control, not data control.
        assert (tmp_path / "emissions.jsonl").read_bytes() == expected_log

    def test_stats_document(self, scenario, tmp_path):
        trace, _, _ = scenario
        service = make_service(
            scenario, tmp_path, standing_queries=4, exit_on_end=False
        )
        replay = ReplaySource(service.socket_path, trace, n_sources=2)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            await replay.run_async()
            while not service.aligner.finished:  # end-of-stream flush
                await asyncio.sleep(0.01)
            stats = await fetch_stats_async(service.socket_path)
            service.request_drain()
            await asyncio.wait_for(task, timeout=60)
            return stats

        stats = asyncio.run(main())
        json.dumps(stats)  # must be a JSON document end to end

        assert stats["epochs_processed"] > 0
        assert stats["epochs_per_s"] > 0
        assert stats["frame_to_emission_p99_s"] >= stats["frame_to_emission_p50_s"]
        assert stats["aligner"]["finished"] is True
        assert stats["aligner"]["buffered_frames"] == 0
        assert set(stats["aligner"]["sources"]) == {"src0", "src1"}
        assert stats["ingest"]["frames_received"] > 0
        assert stats["sink"]["next_offset"] == stats["sink"]["logged"]
        assert stats["multiplexer"]["queries"] >= 5  # location + 4 standing
        assert stats["checkpoint"]["lag_epochs"] == stats["epochs_processed"]
        assert stats["shards"]["count"] == 2
        assert stats["resumed_from"] is None
        assert stats["uptime_s"] > 0


async def open_session(path, hello):
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(hello)
    await writer.drain()
    return reader, writer, FrameDecoder()


async def next_frame_of(reader, decoder, kind, timeout=20):
    """Read frames until one of ``kind`` arrives (EOF before it fails)."""
    while True:
        chunk = await asyncio.wait_for(reader.read(1 << 16), timeout)
        assert chunk, f"connection closed before a {protocol.FRAME_NAMES[kind]}"
        for frame in decoder.feed_frames(chunk):
            if frame.kind == kind:
                return frame


class TestConnectionFaults:
    def test_admission_reject_does_not_pin_the_watermark(
        self, scenario, expected_log, tmp_path
    ):
        """A source rejected at the admission limit must be rolled out of
        the aligner — before the fix its -inf frontier pinned the low
        watermark forever and this test hung instead of completing."""
        trace, _, _ = scenario
        serve = ServeConfig(
            epoch_length=1.0, queue_capacity=64, credit_batch=8, max_sources=2
        )
        service = make_service(scenario, tmp_path, serve=serve)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            # Fill the admission table with the two names the replay uses.
            held = []
            for name in ("src0", "src1"):
                r, w, d = await open_session(
                    service.socket_path, protocol.encode_hello("source", source=name)
                )
                await next_frame_of(r, d, protocol.HELLO_ACK)
                held.append(w)
            # One HELLO too many: rejected with an ERROR, not admitted.
            r, w, d = await open_session(
                service.socket_path, protocol.encode_hello("source", source="late")
            )
            error = await next_frame_of(r, d, protocol.ERROR)
            assert "admission limit" in error.data["error"]
            w.close()
            for writer in held:  # disconnect; the replay resumes the names
                writer.close()
            report = await ReplaySource(
                service.socket_path, trace, n_sources=2
            ).run_async()
            await asyncio.wait_for(task, timeout=60)
            return report

        report = asyncio.run(main())
        assert len(report) == 2
        # The rejected source left no trace in the aligner, and the stream
        # ran to completion byte-identically despite the rejection.
        assert "late" not in service.aligner.source_names()
        assert service.ingest.counters.admission_rejects == 1
        assert (tmp_path / "emissions.jsonl").read_bytes() == expected_log

    def test_library_errors_reach_the_client_as_error_frames(
        self, scenario, tmp_path
    ):
        """StreamError (backwards-in-time record) and StateError (ack
        beyond the log) must earn ERROR frames like ServeError does, not
        die as unhandled exceptions in the connection task."""
        service = make_service(scenario, tmp_path, exit_on_end=False)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()

            r, w, d = await open_session(
                service.socket_path, protocol.encode_hello("source", source="bad")
            )
            await next_frame_of(r, d, protocol.HELLO_ACK)
            w.write(protocol.encode_reading(1, TagReading(5.0, TagId.object(1))))
            w.write(protocol.encode_reading(2, TagReading(4.0, TagId.object(1))))
            await w.drain()
            stream_error = await next_frame_of(r, d, protocol.ERROR)

            r, w, d = await open_session(
                service.socket_path, protocol.encode_hello("subscribe")
            )
            await next_frame_of(r, d, protocol.HELLO_ACK)
            w.write(protocol.encode_ack(999))
            await w.drain()
            state_error = await next_frame_of(r, d, protocol.ERROR)

            service.request_drain()
            await asyncio.wait_for(task, timeout=60)
            return stream_error, state_error

        stream_error, state_error = asyncio.run(main())
        assert "backwards in time" in stream_error.data["error"]
        assert "beyond the log" in state_error.data["error"]

    def test_live_socket_is_not_stolen(self, scenario, tmp_path):
        """Binding over a live instance's socket must fail fast instead of
        silently unlinking it and stealing its clients."""
        service = make_service(scenario, tmp_path, exit_on_end=False)
        rival = make_service(scenario, tmp_path, exit_on_end=False)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            with pytest.raises(ServeError, match="already listening"):
                await rival.run_async()
            # The incumbent is unharmed and still answering.
            stats = await fetch_stats_async(service.socket_path)
            assert stats["uptime_s"] > 0
            service.request_drain()
            await asyncio.wait_for(task, timeout=60)

        asyncio.run(main())


class TestDrainResume:
    @pytest.fixture(scope="class")
    def drain_scenario(self):
        return make_scenario(n_objects=8, n_rounds=2, seed=7)

    def test_drain_then_resume_is_byte_identical(self, drain_scenario, tmp_path):
        trace, _, _ = drain_scenario
        serve = ServeConfig(epoch_length=1.0, queue_capacity=32, credit_batch=4)

        # --- uninterrupted reference run through the service itself ------
        baseline = ReproService(
            drain_scenario[1],
            inference=drain_scenario[2],
            runtime=RuntimeConfig(n_shards=2),
            policy=POLICY,
            serve=serve,
            socket_path=str(tmp_path / "b.sock"),
            emissions_path=str(tmp_path / "baseline.jsonl"),
        )

        async def run_baseline():
            ready = asyncio.Event()
            task = asyncio.create_task(baseline.run_async(ready))
            await ready.wait()
            await ReplaySource(baseline.socket_path, trace, n_sources=3).run_async()
            await asyncio.wait_for(task, timeout=120)

        asyncio.run(run_baseline())
        expected = (tmp_path / "baseline.jsonl").read_bytes()
        assert expected

        # --- run 1: drain (the deferred-signal path) mid-stream ----------
        runtime_config = RuntimeConfig(
            n_shards=2,
            checkpoint_every_s=4.0,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        emissions = str(tmp_path / "served.jsonl")

        def service(resume):
            return ReproService(
                drain_scenario[1],
                inference=drain_scenario[2],
                runtime=runtime_config,
                policy=POLICY,
                serve=serve,
                socket_path=str(tmp_path / "d.sock"),
                emissions_path=emissions,
                resume=resume,
            )

        interrupted = service(resume=False)

        async def run_interrupted():
            ready = asyncio.Event()
            task = asyncio.create_task(interrupted.run_async(ready))
            await ready.wait()
            replay = ReplaySource(
                interrupted.socket_path, trace, n_sources=3, rate=4000.0
            )
            replay_task = asyncio.create_task(replay.run_async())
            while interrupted.runtime.epochs_processed < 5 and not replay_task.done():
                await asyncio.sleep(0.005)
            interrupted.request_drain()
            try:
                await replay_task  # the server hangs up on the clients
            except ServeError:
                pass
            await asyncio.wait_for(task, timeout=120)

        asyncio.run(run_interrupted())
        partial = open(emissions, "rb").read()
        assert expected.startswith(partial)
        assert partial != expected  # it really stopped early
        assert os.path.exists(tmp_path / "ck" / "LATEST")

        # --- run 2: resume from the checkpoint, replay idempotently ------
        resumed = service(resume=True)

        async def run_resumed():
            ready = asyncio.Event()
            task = asyncio.create_task(resumed.run_async(ready))
            await ready.wait()
            report = await ReplaySource(
                resumed.socket_path, trace, n_sources=3
            ).run_async()
            await asyncio.wait_for(task, timeout=120)
            return report

        report = asyncio.run(run_resumed())
        assert resumed.resumed_from is not None

        # The clients were told to skip their already-consumed prefixes.
        assert sum(r["skipped_as_acked"] for r in report.values()) > 0

        # Exactly once: no lost and no doubled emissions, byte for byte.
        assert open(emissions, "rb").read() == expected


class TestSelfHealingServe:
    """Graceful degradation: the service keeps serving through a shard
    recovery, marks the affected emissions degraded on the wire (never in
    the durable log bytes), and reports the episode in STATS."""

    def test_worker_crash_mid_service_recovers_byte_identical(
        self, scenario, expected_log, tmp_path
    ):
        from repro import faults
        from repro.config import SupervisorConfig
        from repro.faults import FaultPlan, FaultRule

        trace, _, _ = scenario
        # Two worker.step hits per epoch (2 shards): epoch index i burns
        # hits 2i+1 and 2i+2.  Hit 21 lands inside epoch t=10.0 — the
        # first epoch whose output-policy flush appends an emission — so
        # the recovery epoch demonstrably emits (and that emission must
        # carry the degraded flag on the wire).
        faults.install(
            FaultPlan(rules=(FaultRule("worker.step", nth=21, action="exit"),))
        )
        service = make_service(
            scenario,
            tmp_path,
            runtime=RuntimeConfig(
                n_shards=2,
                executor="process",
                supervisor=SupervisorConfig(backoff_base_s=0.01),
            ),
        )
        tail_path = tmp_path / "tail.jsonl"
        tail = EmissionTail(service.socket_path, str(tail_path), ack_every=4)

        async def main():
            ready = asyncio.Event()
            task = asyncio.create_task(service.run_async(ready))
            await ready.wait()
            tail_task = asyncio.create_task(tail.run_async())
            await ReplaySource(service.socket_path, trace, n_sources=3).run_async()
            await asyncio.wait_for(task, timeout=120)
            await asyncio.wait_for(tail_task, timeout=60)

        try:
            asyncio.run(main())
        finally:
            faults.clear()

        # The worker really died and the supervisor really healed it.
        stats = service.runtime.supervisor_stats()
        assert stats["restarts"] >= 1
        assert stats["degraded_epochs"] >= 1
        assert service.engine.stats()["degraded_ticks"] >= 1
        # The durable log is byte-identical to the fault-free pipeline's —
        # the degraded marker lives on the wire, not in the log.
        assert (tmp_path / "emissions.jsonl").read_bytes() == expected_log
        assert tail_path.read_bytes() == expected_log
        # The live subscriber saw the recovery epoch's emissions flagged.
        assert tail.degraded_seen >= 1

    def test_tail_reconnect_survives_a_service_bounce(self, scenario, tmp_path):
        """`repro tail --reconnect` rides through a drain + resume: one
        tail process, two service lifetimes, zero lost or doubled lines."""
        trace, model, config = scenario
        serve = ServeConfig(epoch_length=1.0, queue_capacity=32, credit_batch=4)
        runtime_config = RuntimeConfig(
            n_shards=2,
            checkpoint_every_s=4.0,
            checkpoint_dir=str(tmp_path / "ck"),
        )
        emissions = str(tmp_path / "served.jsonl")
        sock = str(tmp_path / "bounce.sock")

        def service(resume):
            return ReproService(
                model,
                inference=config,
                runtime=runtime_config,
                policy=POLICY,
                serve=serve,
                socket_path=sock,
                emissions_path=emissions,
                resume=resume,
            )

        tail_path = tmp_path / "tail.jsonl"
        tail = EmissionTail(
            sock, str(tail_path), ack_every=4, reconnect=50, connect_retries=6
        )

        async def main():
            first = service(resume=False)
            ready = asyncio.Event()
            task = asyncio.create_task(first.run_async(ready))
            await ready.wait()
            tail_task = asyncio.create_task(tail.run_async())
            replay = ReplaySource(sock, trace, n_sources=3, rate=4000.0)
            replay_task = asyncio.create_task(replay.run_async())
            while first.runtime.epochs_processed < 5 and not replay_task.done():
                await asyncio.sleep(0.005)
            first.request_drain()
            try:
                await replay_task
            except ServeError:
                pass
            await asyncio.wait_for(task, timeout=120)

            second = service(resume=True)
            ready = asyncio.Event()
            task = asyncio.create_task(second.run_async(ready))
            await ready.wait()
            await ReplaySource(sock, trace, n_sources=3).run_async()
            await asyncio.wait_for(task, timeout=120)

            # The tail catches up on its own; don't wait for its reconnect
            # budget to drain — assert the file converged, then stop it.
            expected = open(emissions, "rb").read()
            deadline = asyncio.get_running_loop().time() + 30
            while asyncio.get_running_loop().time() < deadline:
                if tail_path.exists() and tail_path.read_bytes() == expected:
                    break
                await asyncio.sleep(0.05)
            tail_task.cancel()
            try:
                await tail_task
            except asyncio.CancelledError:
                pass
            return expected

        expected = asyncio.run(main())
        assert expected  # the bounced run emitted something
        assert tail_path.read_bytes() == expected
        assert tail.reconnects_used >= 1  # it really rode through the bounce
