"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import (
    error_reduction,
    inference_error,
    mean_error_reduction,
    within_accuracy,
)


class TestInferenceError:
    def test_exact_match_zero_error(self):
        truth = {1: np.array([1.0, 2.0, 0.0])}
        summary = inference_error(truth, truth)
        assert summary.x == 0.0 and summary.y == 0.0 and summary.xy == 0.0
        assert summary.n_objects == 1

    def test_axis_decomposition(self):
        estimates = {1: np.array([1.3, 2.4, 0.0])}
        truth = {1: np.array([1.0, 2.0, 0.0])}
        summary = inference_error(estimates, truth)
        assert summary.x == pytest.approx(0.3)
        assert summary.y == pytest.approx(0.4)
        assert summary.xy == pytest.approx(0.5)

    def test_averaging_over_objects(self):
        estimates = {1: np.array([1.0, 0.0, 0.0]), 2: np.array([0.0, 0.0, 0.0])}
        truth = {1: np.zeros(3), 2: np.zeros(3)}
        summary = inference_error(estimates, truth)
        assert summary.x == pytest.approx(0.5)
        assert summary.n_objects == 2

    def test_subset_scoring(self):
        estimates = {1: np.zeros(3)}
        truth = {1: np.zeros(3), 2: np.ones(3)}
        summary = inference_error(estimates, truth, numbers=[1])
        assert summary.n_objects == 1

    def test_missing_estimate_raises(self):
        with pytest.raises(ConfigurationError):
            inference_error({}, {1: np.zeros(3)})

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            inference_error({}, {})

    def test_str_format(self):
        truth = {1: np.zeros(3)}
        assert "n=1" in str(inference_error(truth, truth))


class TestErrorReduction:
    def test_basic(self):
        assert error_reduction(0.5, 1.0) == pytest.approx(0.5)
        assert error_reduction(1.0, 1.0) == pytest.approx(0.0)

    def test_negative_when_worse(self):
        assert error_reduction(2.0, 1.0) == pytest.approx(-1.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            error_reduction(0.5, 0.0)

    def test_mean_reduction(self):
        pairs = [(0.5, 1.0), (0.25, 1.0)]
        assert mean_error_reduction(pairs) == pytest.approx(0.625)

    def test_mean_reduction_empty(self):
        with pytest.raises(ConfigurationError):
            mean_error_reduction([])


class TestWithinAccuracy:
    def test_counts_hits(self):
        estimates = {
            1: np.array([0.1, 0.0, 0.0]),
            2: np.array([2.0, 0.0, 0.0]),
        }
        truth = {1: np.zeros(3), 2: np.zeros(3)}
        assert within_accuracy(estimates, truth, 0.5) == pytest.approx(0.5)

    def test_missing_estimates_count_as_misses(self):
        truth = {1: np.zeros(3), 2: np.zeros(3)}
        estimates = {1: np.zeros(3)}
        assert within_accuracy(estimates, truth, 0.5) == pytest.approx(0.5)
