"""Tests for the object location model (move w.p. alpha)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.objects import ObjectDynamicsParams, ObjectLocationModel


class TestParams:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            ObjectDynamicsParams(move_probability=1.5)
        with pytest.raises(ConfigurationError):
            ObjectDynamicsParams(move_probability=-0.1)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            ObjectDynamicsParams(stationary_jitter=-1.0)


class TestPropagate:
    def test_zero_alpha_is_identity(self, single_shelf, rng):
        model = ObjectLocationModel(
            single_shelf, ObjectDynamicsParams(move_probability=0.0)
        )
        positions = single_shelf.sample_uniform(rng, 100)
        out = model.propagate(positions, rng)
        assert np.array_equal(out, positions)

    def test_move_fraction_matches_alpha(self, single_shelf, rng):
        alpha = 0.2
        model = ObjectLocationModel(
            single_shelf, ObjectDynamicsParams(move_probability=alpha)
        )
        positions = np.tile(np.array([2.5, 4.0, 0.0]), (20000, 1))
        out = model.propagate(positions, rng)
        moved = (np.abs(out - positions).max(axis=1) > 1e-12).mean()
        assert moved == pytest.approx(alpha, abs=0.01)

    def test_moved_particles_land_on_shelves(self, two_shelves, rng):
        model = ObjectLocationModel(
            two_shelves, ObjectDynamicsParams(move_probability=1.0)
        )
        positions = np.tile(np.array([2.5, 4.0, 0.0]), (500, 1))
        out = model.propagate(positions, rng)
        assert two_shelves.contains_points(out).all()

    def test_jitter_moves_stationary_particles(self, single_shelf, rng):
        model = ObjectLocationModel(
            single_shelf,
            ObjectDynamicsParams(move_probability=0.0, stationary_jitter=0.05),
        )
        positions = np.tile(np.array([2.5, 4.0, 0.0]), (2000, 1))
        out = model.propagate(positions, rng)
        delta = out - positions
        assert delta[:, 0].std() == pytest.approx(0.05, rel=0.15)
        assert (delta[:, 2] == 0).all()  # jitter stays in-plane


class TestInitialPositions:
    def test_uniform_over_shelves(self, two_shelves, rng):
        model = ObjectLocationModel(two_shelves)
        pts = model.initial_positions(rng, 1000)
        assert pts.shape == (1000, 3)
        assert two_shelves.contains_points(pts).all()
        # Equal-area shelves: roughly half on each.
        frac = (pts[:, 0] > 0).mean()
        assert frac == pytest.approx(0.5, abs=0.05)
