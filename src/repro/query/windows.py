"""Window operators: stream -> time-varying relation.

CQL's bracketed window specifications, as used by the paper's queries:

* ``[Now]`` — the tuples arriving at the current tick only;
* ``[Range N seconds]`` — tuples with timestamp in ``(t - N, t]``;
* ``[Partition By k1,k2 Rows N]`` — per partition, the most recent N rows;
  the location-update query uses ``[Partition By tag_id Row 1]``.

A window is a stateful object: ``push(time, batch)`` ingests the tick's new
tuples and returns the relation contents at that tick (a list of tuples).

Windows also expose an incremental surface used by the multiplexer
(:mod:`repro.query.multiplexer`):

* ``ingest(time, batch) -> (added, removed)`` applies the tick and returns
  the change-list instead of the full relation;
* ``relation()`` materializes the current relation (same content and order
  ``push`` would have returned);
* ``signature()`` is a structural identity (type + parameters) for window
  dedup — ``None`` means "not shareable" (custom subclasses);
* ``snapshot_state()`` / ``restore_state(state)`` capture the window for
  checkpointing (plain-python trees of :class:`StreamTuple`, picklable).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError, StateError
from .tuples import StreamTuple

ChangeList = Tuple[List[StreamTuple], List[StreamTuple]]


class Window:
    """Interface: push a tick's batch, get the current relation."""

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        raise NotImplementedError

    def signature(self) -> Optional[Tuple]:
        """Structural identity for dedup; ``None`` = never share."""
        return None

    def snapshot_state(self) -> dict:
        raise StateError(
            f"window {type(self).__name__} does not support state capture"
        )

    def restore_state(self, state: dict) -> None:
        raise StateError(
            f"window {type(self).__name__} does not support state restore"
        )


class NowWindow(Window):
    """``[Now]``: the relation is exactly this tick's arrivals."""

    def __init__(self) -> None:
        self._current: List[StreamTuple] = []

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        self.ingest(time, batch)
        return self.relation()

    def ingest(self, time: float, batch: Sequence[StreamTuple]) -> ChangeList:
        removed = self._current
        self._current = list(batch)
        return list(self._current), removed

    def relation(self) -> List[StreamTuple]:
        return list(self._current)

    def signature(self) -> Optional[Tuple]:
        if type(self) is not NowWindow:
            return None
        return ("now",)

    def snapshot_state(self) -> dict:
        return {"window": "now", "current": list(self._current)}

    def restore_state(self, state: dict) -> None:
        if state.get("window") != "now":
            raise StateError(f"expected a [Now] window state, got {state.get('window')!r}")
        self._current = list(state["current"])


class RangeWindow(Window):
    """``[Range N seconds]``: sliding time window.

    Ticks must be pushed in non-decreasing time order.
    """

    def __init__(self, range_s: float):
        if range_s <= 0:
            raise QueryError(f"window range must be positive, got {range_s}")
        self.range_s = float(range_s)
        self._buffer: Deque[StreamTuple] = deque()
        self._last_time = -float("inf")

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        self.ingest(time, batch)
        return self.relation()

    def ingest(self, time: float, batch: Sequence[StreamTuple]) -> ChangeList:
        if time < self._last_time:
            raise QueryError(
                f"ticks must be time-ordered: {time} < {self._last_time}"
            )
        self._last_time = time
        self._buffer.extend(batch)
        cutoff = time - self.range_s
        removed: List[StreamTuple] = []
        while self._buffer and self._buffer[0].time <= cutoff:
            removed.append(self._buffer.popleft())
        return list(batch), removed

    def relation(self) -> List[StreamTuple]:
        return list(self._buffer)

    def signature(self) -> Optional[Tuple]:
        if type(self) is not RangeWindow:
            return None
        return ("range", self.range_s)

    def snapshot_state(self) -> dict:
        return {
            "window": "range",
            "range_s": self.range_s,
            "buffer": list(self._buffer),
            "last_time": self._last_time,
        }

    def restore_state(self, state: dict) -> None:
        if state.get("window") != "range" or state.get("range_s") != self.range_s:
            raise StateError(
                f"window state mismatch: expected [Range {self.range_s}], "
                f"got {state.get('window')!r}/{state.get('range_s')!r}"
            )
        self._buffer = deque(state["buffer"])
        self._last_time = state["last_time"]


class UnboundedWindow(Window):
    """``[Unbounded]``: everything seen so far (used by tests/examples)."""

    def __init__(self) -> None:
        self._buffer: List[StreamTuple] = []

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        self.ingest(time, batch)
        return self.relation()

    def ingest(self, time: float, batch: Sequence[StreamTuple]) -> ChangeList:
        self._buffer.extend(batch)
        return list(batch), []

    def relation(self) -> List[StreamTuple]:
        return list(self._buffer)

    def signature(self) -> Optional[Tuple]:
        if type(self) is not UnboundedWindow:
            return None
        return ("unbounded",)

    def snapshot_state(self) -> dict:
        return {"window": "unbounded", "buffer": list(self._buffer)}

    def restore_state(self, state: dict) -> None:
        if state.get("window") != "unbounded":
            raise StateError(
                f"expected an [Unbounded] window state, got {state.get('window')!r}"
            )
        self._buffer = list(state["buffer"])


class PartitionRowsWindow(Window):
    """``[Partition By keys Rows N]``: most recent N rows per partition.

    Relation order is deterministic: partitions in first-seen order, rows
    oldest-to-newest within a partition.  ``partition_seq`` exposes the
    first-seen rank of a partition key (stable: partitions never vanish),
    which the multiplexer's spatial index uses to reproduce relation order
    from an index lookup.
    """

    def __init__(self, keys: Sequence[str], rows: int = 1):
        if not keys:
            raise QueryError("partition window needs at least one key")
        if rows < 1:
            raise QueryError(f"rows must be >= 1, got {rows}")
        self.keys = tuple(keys)
        self.rows = int(rows)
        self._partitions: "OrderedDict[Tuple, Deque[StreamTuple]]" = OrderedDict()
        self._seq: Dict[Tuple, int] = {}

    def partition_key(self, tup: StreamTuple) -> Tuple:
        return tuple(tup[k] for k in self.keys)

    def partition_seq(self, key: Tuple) -> int:
        return self._seq[key]

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        self.ingest(time, batch)
        return self.relation()

    def ingest(self, time: float, batch: Sequence[StreamTuple]) -> ChangeList:
        removed: List[StreamTuple] = []
        for tup in batch:
            key = self.partition_key(tup)
            rows = self._partitions.get(key)
            if rows is None:
                self._seq[key] = len(self._seq)
                rows = deque(maxlen=self.rows)
                self._partitions[key] = rows
            elif len(rows) == self.rows:
                removed.append(rows[0])
            rows.append(tup)
        return list(batch), removed

    def relation(self) -> List[StreamTuple]:
        out: List[StreamTuple] = []
        for rows in self._partitions.values():
            out.extend(rows)
        return out

    def signature(self) -> Optional[Tuple]:
        if type(self) is not PartitionRowsWindow:
            return None
        return ("partition", self.keys, self.rows)

    def snapshot_state(self) -> dict:
        return {
            "window": "partition",
            "keys": self.keys,
            "rows": self.rows,
            "partitions": [(key, list(dq)) for key, dq in self._partitions.items()],
        }

    def restore_state(self, state: dict) -> None:
        if (
            state.get("window") != "partition"
            or tuple(state.get("keys", ())) != self.keys
            or state.get("rows") != self.rows
        ):
            raise StateError(
                "window state mismatch: expected "
                f"[Partition By {self.keys} Rows {self.rows}]"
            )
        self._partitions = OrderedDict(
            (tuple(key), deque(rows, maxlen=self.rows))
            for key, rows in state["partitions"]
        )
        self._seq = {key: i for i, key in enumerate(self._partitions)}
