"""Evaluation: the paper's metrics, the experiment harness, and report
formatting for the benchmark suite."""

from .harness import (
    SystemResult,
    final_estimates_from_sink,
    run_factored,
    run_naive,
    run_sharded,
    run_smurf,
    run_uniform,
)
from .metrics import (
    ErrorSummary,
    error_reduction,
    inference_error,
    mean_error_reduction,
    within_accuracy,
)
from .report import format_series, format_table, paper_vs_measured

__all__ = [
    "ErrorSummary",
    "SystemResult",
    "error_reduction",
    "final_estimates_from_sink",
    "format_series",
    "format_table",
    "inference_error",
    "mean_error_reduction",
    "paper_vs_measured",
    "run_factored",
    "run_naive",
    "run_sharded",
    "run_smurf",
    "run_uniform",
    "within_accuracy",
]
