"""Warehouse layout (Section V-A).

"The simulated warehouse consists of consecutive shelves aligned on the y
axis, with objects evenly spaced on the shelves.  Both shelves and objects
are affixed with RFID tags. ... An RFID reader is mounted on a robot that
moves down the y axis facing the shelves."

The robot's aisle is the y axis at ``x = 0``; shelf fronts sit at
``x = shelf_x``; objects sit on the shelf-front line, evenly spaced along y;
shelf tags (known locations) are evenly spaced along the same line.  All z
coordinates are zero (the paper ignores z in simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import SimulationError
from ..geometry.box import Box
from ..geometry.shapes import ShelfRegion, ShelfSet


@dataclass(frozen=True)
class LayoutConfig:
    """Geometry knobs of the simulated warehouse."""

    n_objects: int = 16
    object_spacing_ft: float = 0.5
    #: Aisle-to-shelf-front distance: objects sit on the line x = shelf_x.
    shelf_x_ft: float = 2.0
    #: Depth of the shelf boxes behind the front line (sampling region).
    shelf_depth_ft: float = 1.0
    #: Length of one shelf segment; segments tile the object row.
    shelf_segment_ft: float = 4.0
    n_shelf_tags: int = 4
    #: Margin of empty shelf before the first and after the last object.
    margin_ft: float = 0.5

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise SimulationError("n_objects must be >= 1")
        if self.object_spacing_ft <= 0 or self.shelf_segment_ft <= 0:
            raise SimulationError("spacings must be positive")
        if self.shelf_x_ft <= 0 or self.shelf_depth_ft <= 0:
            raise SimulationError("shelf_x_ft and shelf_depth_ft must be positive")
        if self.n_shelf_tags < 0:
            raise SimulationError("n_shelf_tags must be >= 0")


@dataclass
class WarehouseLayout:
    """Concrete tag/shelf geometry produced from a :class:`LayoutConfig`."""

    config: LayoutConfig
    object_positions: Dict[int, np.ndarray]
    shelf_tag_positions: Dict[int, np.ndarray]
    shelves: ShelfSet

    @staticmethod
    def build(config: LayoutConfig = LayoutConfig()) -> "WarehouseLayout":
        span = (config.n_objects - 1) * config.object_spacing_ft
        y0 = 0.0
        object_positions = {
            i: np.array([config.shelf_x_ft, y0 + i * config.object_spacing_ft, 0.0])
            for i in range(config.n_objects)
        }
        # Shelf tags evenly spaced across the occupied span (inclusive ends).
        shelf_tag_positions: Dict[int, np.ndarray] = {}
        if config.n_shelf_tags == 1:
            ys = [y0 + span / 2.0]
        else:
            ys = [
                y0 + span * k / max(config.n_shelf_tags - 1, 1)
                for k in range(config.n_shelf_tags)
            ]
        for k in range(config.n_shelf_tags):
            shelf_tag_positions[k] = np.array([config.shelf_x_ft, ys[k], 0.0])
        # Shelf segments tile the span (plus margins).
        lo_y = y0 - config.margin_ft
        hi_y = y0 + span + config.margin_ft
        segments: List[ShelfRegion] = []
        seg_id = 0
        y = lo_y
        while y < hi_y:
            top = min(y + config.shelf_segment_ft, hi_y)
            segments.append(
                ShelfRegion(
                    shelf_id=seg_id,
                    box=Box(
                        (config.shelf_x_ft, y, 0.0),
                        (config.shelf_x_ft + config.shelf_depth_ft, top, 0.0),
                    ),
                )
            )
            seg_id += 1
            y = top
        return WarehouseLayout(
            config=config,
            object_positions=object_positions,
            shelf_tag_positions=shelf_tag_positions,
            shelves=ShelfSet(segments),
        )

    @property
    def span_y(self) -> Tuple[float, float]:
        """(min, max) y coordinate of the object row."""
        ys = [p[1] for p in self.object_positions.values()]
        return min(ys), max(ys)

    def object_array(self) -> Tuple[List[int], np.ndarray]:
        numbers = sorted(self.object_positions)
        return numbers, np.stack([self.object_positions[n] for n in numbers])
