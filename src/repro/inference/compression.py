"""Belief compression (Section IV-D).

When an object's particles have stabilized into a small region, the particle
cloud is replaced by its moment-matched Gaussian — "a three-dimension
Gaussian requires only 9 real numbers" versus 1000 particles.  Later, when
the tag is read again, a small number of particles is sampled back out of the
Gaussian ("many fewer particles are required for accurate inference after
decompression").

The moment-matched Gaussian is the KL(p̂ || q) minimizer over Gaussians; the
compression *error* reported by :func:`compression_error` is the weighted
average squared distance from the mean (the trace of the covariance), which
is "essentially" what the KL reduces to per the paper, and is measured in
squared feet.

If every object's belief is compressed the filter becomes an instance of the
Boyen–Koller algorithm (factored Gaussian beliefs); the test suite checks
that boundary case explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..config import BudgetConfig, CompressionConfig
from ..errors import InferenceError
from .base import segmented_normalize, weighted_mean_cov
from .estimates import LocationEstimate

#: Diagonal jitter added to compressed covariances so that decompression
#: sampling works even when particles collapsed to (numerically) one point.
_COV_JITTER = 1e-10


@dataclass
class GaussianBelief:
    """Compressed representation: N(mean, covariance) over a location."""

    mean: np.ndarray  # (3,)
    covariance: np.ndarray  # (3, 3)

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=float)
        self.covariance = np.asarray(self.covariance, dtype=float)
        if self.mean.shape != (3,) or self.covariance.shape != (3, 3):
            raise InferenceError("GaussianBelief needs (3,) mean and (3,3) covariance")

    def estimate(self) -> LocationEstimate:
        return LocationEstimate.from_gaussian(self.mean, self.covariance)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` decompression particles.

        Uses the covariance's eigendecomposition (the covariance is often
        singular in planar scenes where z collapsed), clipping tiny negative
        eigenvalues from floating-point noise.
        """
        if n < 1:
            raise InferenceError("n must be >= 1")
        cov = self.covariance + _COV_JITTER * np.eye(3)
        eigenvalues, eigenvectors = np.linalg.eigh(cov)
        eigenvalues = np.maximum(eigenvalues, 0.0)
        scale = eigenvectors * np.sqrt(eigenvalues)[None, :]
        z = rng.normal(size=(n, 3))
        return self.mean[None, :] + z @ scale.T


def compress(points: np.ndarray, log_weights: np.ndarray) -> GaussianBelief:
    """Moment-match a weighted particle cloud into a Gaussian belief."""
    mean, cov = weighted_mean_cov(points, log_weights)
    return GaussianBelief(mean=mean, covariance=cov)


def compression_error(points: np.ndarray, log_weights: np.ndarray) -> float:
    """Expected squared error (sq ft) of replacing the cloud by its Gaussian.

    ``sum_j w_j ||x_j - mu||^2`` = trace of the moment-matched covariance;
    the paper's ranking criterion for choosing which objects to compress.
    """
    _, cov = weighted_mean_cov(points, log_weights)
    return float(np.trace(cov))


def segmented_compression_errors(
    points: np.ndarray,
    log_weights: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Per-segment :func:`compression_error` over a flat cross-object batch
    (the belief arena's layout): one vectorized pass scores every candidate.

    Uses ``E||x - mu||^2 = E||x||^2 - ||mu||^2`` per segment; warehouse
    coordinates are tens of feet and spreads fractions of a foot, so the
    cancellation costs ~8 of the 16 significant digits — far inside the
    tolerance of a compression *ranking* criterion.
    """
    p, _ = segmented_normalize(log_weights, starts, lengths)
    means = np.add.reduceat(points * p[:, None], starts, axis=0)
    second_moment = np.add.reduceat(
        p * np.einsum("ij,ij->i", points, points), starts
    )
    return np.maximum(second_moment - np.einsum("ij,ij->i", means, means), 0.0)


@dataclass(frozen=True)
class CompressionCandidate:
    """One object's eligibility snapshot for the compression policy."""

    object_id: int
    epochs_unread: int
    particle_count: int
    error: float  # compression error (trace of covariance), sq ft


def select_for_compression(
    candidates: Sequence[CompressionCandidate], config: CompressionConfig
) -> List[int]:
    """Decide which objects to compress under the configured policy.

    * Default policy: compress every candidate whose tag has been unread for
      ``config.unread_epochs`` epochs (the "object left the read range"
      policy the paper uses for its scalability runs).
    * KL policy (``config.kl_threshold`` set): among unread candidates, rank
      by compression error ascending and compress those below the threshold
      — "compress the objects that would have the least compression error
      ... augmented with a threshold".
    """
    eligible = [
        c
        for c in candidates
        if c.epochs_unread >= config.unread_epochs
        and c.particle_count >= config.min_particles_to_compress
    ]
    if config.kl_threshold is None:
        return [c.object_id for c in eligible]
    ranked = sorted(eligible, key=lambda c: c.error)
    return [c.object_id for c in ranked if c.error <= config.kl_threshold]


# ---------------------------------------------------------------------------
# Adaptive budget policy (ROADMAP item 4)
# ---------------------------------------------------------------------------
# ``select_for_compression`` answers one binary question — compress or keep.
# The budget controller generalizes it into a *ladder* of particle tiers
# between "full budget" and "Gaussian": these pure policy functions pick the
# rungs; the controller in ``inference.factored`` applies them.


def park_tier(ess: float, tiers: Sequence[int]) -> int:
    """Tier for a settled belief leaving the per-epoch kernels.

    The smallest configured tier that still preserves the belief's effective
    sample size — downsampling below the ESS would discard information the
    weights say is there — capped at the largest tier.  ``tiers`` ascending.
    """
    for tier in tiers:
        if tier >= ess:
            return tier
    return tiers[-1]


def step_down_tier(count: int, tiers: Sequence[int]) -> Optional[int]:
    """Next rung below ``count`` on the decay ladder, or ``None`` when the
    belief is at (or below) the lowest tier and should compress to a
    Gaussian.  ``tiers`` ascending."""
    below = None
    for tier in tiers:
        if tier < count:
            below = tier
    return below


def settles(error: float, config: BudgetConfig) -> bool:
    """True when a belief's compression error is low enough to park."""
    return error <= config.settle_error_sq_ft
