"""Hot-loop throughput: epochs/sec of the factored filter vs active tags.

This is the headline number of the arena/batched-kernel refactor: the seed
implementation processed objects one at a time in Python, so per-epoch cost
was dominated by interpreter overhead at thousands of tags.  The benchmark
drives the filter in steady state — every object discovered, spatial index
disabled so the whole population is active every epoch, a small rotating
read set exercising the re-detection path — and measures wall-clock
epochs/sec at 100 / 500 / 2000 active tags.

Standalone (no pytest-benchmark dependency) so CI can smoke-run it::

    PYTHONPATH=src python benchmarks/bench_hot_loop.py [--quick]

Results are written to ``BENCH_hot_loop.json`` at the repo root alongside
the recorded seed baseline, so the performance trajectory is tracked in
version control.

``--check BENCH_hot_loop.json`` turns the run into a regression guard: the
measured epochs/sec at every tag count must stay within ``--check-tolerance``
(default 30%) of the committed baseline or the process exits non-zero — CI
runs this against the repository's recorded numbers so a hot-loop regression
fails the build instead of landing silently.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import InferenceConfig
from repro.geometry.box import Box
from repro.geometry.shapes import ShelfRegion, ShelfSet
from repro.inference.factored import FactoredParticleFilter
from repro.models.joint import RFIDWorldModel
from repro.models.motion import MotionParams
from repro.models.sensing import SensingNoiseParams
from repro.models.sensor import SensorParams
from repro.streams.records import make_epoch

#: Seed (pre-arena, per-object-loop) engine measured on the same scenario,
#: same machine class, at commit 3957a76 — the baseline the acceptance
#: criterion (>= 3x at 2000 tags) is judged against.
SEED_BASELINE_EPOCHS_PER_SEC = {100: 86.9, 500: 19.3, 2000: 4.35}

#: Object tags re-read per epoch (exercises the re-detection decision path
#: at a realistic rate without dominating the measurement).
READS_PER_EPOCH = 16

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hot_loop.json"


def build_model(n_objects: int) -> RFIDWorldModel:
    """One long shelf row sized to the population, two shelf anchor tags."""
    length = max(8.0, n_objects * 0.05)
    shelves = ShelfSet([ShelfRegion(0, Box((2.0, 0.0, 0.0), (3.0, length, 0.0)))])
    return RFIDWorldModel.build(
        shelves,
        shelf_tags={
            0: np.array([2.0, 1.0, 0.0]),
            1: np.array([2.0, length - 1.0, 0.0]),
        },
        sensor_params=SensorParams(a=(4.0, 0.0, -0.9), b=(0.0, -6.0)),
        motion_params=MotionParams(velocity=(0.0, 0.1, 0.0), sigma=(0.01, 0.01, 0.0)),
        sensing_params=SensingNoiseParams(sigma=(0.01, 0.01, 0.0)),
    )


def measure(n_objects: int, timed_epochs: int, warmup: int = 3) -> dict:
    model = build_model(n_objects)
    config = InferenceConfig(reader_particles=100, object_particles=100, seed=3)
    engine = FactoredParticleFilter(model, config)

    def epoch_at(t: int):
        reads = [(t * READS_PER_EPOCH + i) % n_objects for i in range(READS_PER_EPOCH)]
        return make_epoch(
            float(t), (0.0, 1.0 + 0.1 * t), object_tags=reads, reported_heading=0.0
        )

    # Discovery epoch (excluded from timing): read every tag once so the
    # whole population is known and — with the index disabled — active.
    engine.step(
        make_epoch(
            0.0, (0.0, 1.0), object_tags=list(range(n_objects)), reported_heading=0.0
        )
    )
    for t in range(1, 1 + warmup):
        engine.step(epoch_at(t))

    start = time.perf_counter()
    for t in range(1 + warmup, 1 + warmup + timed_epochs):
        engine.step(epoch_at(t))
    elapsed = time.perf_counter() - start

    assert engine.active_count == n_objects, "population fell out of the active set"
    epochs_per_sec = timed_epochs / elapsed
    baseline = SEED_BASELINE_EPOCHS_PER_SEC.get(n_objects)
    return {
        "active_objects": engine.active_count,
        "particles_per_object": config.object_particles,
        "timed_epochs": timed_epochs,
        "elapsed_s": round(elapsed, 4),
        "epochs_per_sec": round(epochs_per_sec, 2),
        "seed_epochs_per_sec": baseline,
        "speedup_vs_seed": (
            round(epochs_per_sec / baseline, 2) if baseline else None
        ),
        "arena_used_rows": engine.arena.used_rows,
        "arena_capacity": engine.arena.capacity,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="fewer timed epochs (CI smoke run)"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only, skip BENCH_hot_loop.json"
    )
    parser.add_argument(
        "--check",
        type=str,
        default=None,
        metavar="BASELINE_JSON",
        help="compare against a recorded BENCH_hot_loop.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--check-tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below the baseline (default 0.30)",
    )
    args = parser.parse_args()

    plan = [(100, 60), (500, 30), (2000, 10)]
    if args.quick:
        plan = [(n, max(3, e // 5)) for n, e in plan]

    results = {}
    print(f"{'tags':>6} {'epochs/s':>10} {'seed':>8} {'speedup':>8}")
    for n_objects, timed in plan:
        row = measure(n_objects, timed)
        results[str(n_objects)] = row
        seed = row["seed_epochs_per_sec"]
        speed = row["speedup_vs_seed"]
        print(
            f"{n_objects:>6} {row['epochs_per_sec']:>10.2f} "
            f"{seed if seed else '-':>8} "
            f"{f'{speed:.2f}x' if speed else '-':>8}"
        )

    payload = {
        "benchmark": "hot_loop",
        "description": (
            "Factored-filter steady-state epochs/sec vs active-object count "
            "(index disabled, 100 particles/object, 100 reader particles, "
            f"{READS_PER_EPOCH} reads/epoch); seed baseline measured on the "
            "per-object-loop engine at commit 3957a76."
        ),
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }
    if not args.no_write:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {RESULT_PATH}")
    if args.check is not None and not _check_regression(
        results, args.check, args.check_tolerance
    ):
        sys.exit(1)


def _check_regression(results: dict, baseline_path: str, tolerance: float) -> bool:
    """True iff every measured tag count stays within ``tolerance`` of the
    recorded baseline's epochs/sec (tag counts absent from the baseline are
    reported but not enforced)."""
    with open(baseline_path) as fp:
        baseline = json.load(fp)["results"]
    ok = True
    print(f"\nregression check vs {baseline_path} (tolerance {tolerance:.0%}):")
    for tags, row in results.items():
        recorded = baseline.get(tags, {}).get("epochs_per_sec")
        if not recorded:
            print(f"  {tags} tags: no baseline recorded, skipping")
            continue
        floor = (1.0 - tolerance) * recorded
        measured = row["epochs_per_sec"]
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"  {tags} tags: {measured:.2f} vs baseline {recorded:.2f} "
            f"(floor {floor:.2f}) {verdict}"
        )
        if measured < floor:
            ok = False
    return ok


if __name__ == "__main__":
    main()
