"""Tests for the scripted robot reader and location sensors."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.reader import (
    DeadReckoningSensor,
    GaussianLocationSensor,
    ScriptedReader,
    Waypoint,
)


def straight_robot(**kwargs):
    return ScriptedReader(
        [Waypoint((0, 0, 0), 0.0), Waypoint((0, 5, 0), 0.0)],
        speed_ft_per_epoch=0.5,
        motion_sigma=(0.0, 0.0, 0.0),
        **kwargs,
    )


class TestScriptedReader:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ScriptedReader([Waypoint((0, 0, 0), 0.0)])
        with pytest.raises(SimulationError):
            straight_robot().__class__(
                [Waypoint((0, 0, 0), 0.0), Waypoint((1, 0, 0), 0.0)],
                speed_ft_per_epoch=0.0,
            )

    def test_constant_speed_progress(self, rng):
        robot = straight_robot()
        for _ in range(4):
            robot.step(rng)
        assert robot.commanded[1] == pytest.approx(2.0)
        assert not robot.finished

    def test_finishes_at_last_waypoint(self, rng):
        robot = straight_robot()
        for _ in range(20):
            robot.step(rng)
        assert robot.finished
        assert robot.commanded[1] == pytest.approx(5.0)
        # Further steps are no-ops.
        position = robot.commanded.copy()
        robot.step(rng)
        assert robot.commanded.tolist() == position.tolist()

    def test_turnaround_heading_change(self, rng):
        robot = ScriptedReader(
            [
                Waypoint((0, 0, 0), 0.0),
                Waypoint((0, 2, 0), 0.0),
                Waypoint((0, 0, 0), math.pi),
            ],
            speed_ft_per_epoch=0.5,
            motion_sigma=(0, 0, 0),
        )
        headings = []
        for _ in range(10):
            robot.step(rng)
            headings.append(robot.heading)
        assert 0.0 in headings
        assert math.pi in headings
        assert robot.finished
        assert robot.commanded[1] == pytest.approx(0.0)

    def test_drift_accumulates_in_truth_only(self, rng):
        robot = straight_robot(drift_rate=(0.0, 0.1, 0.0))
        for _ in range(5):
            robot.step(rng)
        drift = robot.true_position[1] - robot.commanded[1]
        assert drift == pytest.approx(0.5)

    def test_slip_noise_spreads_truth(self):
        rng = np.random.default_rng(0)
        finals = []
        for seed in range(30):
            robot = ScriptedReader(
                [Waypoint((0, 0, 0), 0.0), Waypoint((0, 5, 0), 0.0)],
                speed_ft_per_epoch=0.5,
                motion_sigma=(0.05, 0.05, 0.0),
            )
            local_rng = np.random.default_rng(seed)
            for _ in range(10):
                robot.step(local_rng)
            finals.append(robot.true_position[0])
        assert np.std(finals) > 0.05

    def test_waypoint_passthrough_in_one_step(self, rng):
        # Speed larger than a whole segment: the robot passes through.
        robot = ScriptedReader(
            [
                Waypoint((0, 0, 0), 0.0),
                Waypoint((0, 0.2, 0), 0.0),
                Waypoint((0, 1.0, 0), 0.5),
            ],
            speed_ft_per_epoch=0.5,
            motion_sigma=(0, 0, 0),
        )
        robot.step(rng)
        assert robot.commanded[1] == pytest.approx(0.5)
        assert robot.heading == 0.5


class TestLocationSensors:
    def test_gaussian_sensor_bias(self, rng):
        sensor = GaussianLocationSensor(bias=(0.0, 0.3, 0.0), sigma=(0.0, 0.0, 0.0))
        out = sensor.report(np.array([1.0, 1.0, 0.0]), rng)
        assert out.tolist() == pytest.approx([1.0, 1.3, 0.0])

    def test_dead_reckoning_small_noise(self, rng):
        sensor = DeadReckoningSensor(encoder_sigma=0.001)
        reports = np.stack(
            [sensor.report(np.array([2.0, 3.0, 0.0]), rng) for _ in range(200)]
        )
        assert reports.mean(axis=0) == pytest.approx([2.0, 3.0, 0.0], abs=0.001)
        assert (reports[:, 2] == 0.0).all()
