"""Tests for the sharded runtime: partitioning, routing, the event bus,
and — the load-bearing guarantee — sharded-vs-unsharded parity.

Parity has two tiers, mirroring the per-shard seed derivation:

* ``n_shards=1`` keeps the root seed, so the runtime is *bitwise identical*
  to an unsharded :class:`CleaningPipeline` over the same engine config;
* ``n_shards=4`` uses independent per-shard RNG streams, so the emitted
  (time, tag) set must match exactly while positions agree within the same
  tolerance the seed-golden tests use for RNG-order changes (0.6 ft).
"""

import numpy as np
import pytest

from repro.config import (
    InferenceConfig,
    OutputPolicyConfig,
    RuntimeConfig,
)
from repro.errors import ConfigurationError, StreamError
from repro.inference.factored import FactoredParticleFilter
from repro.inference.naive import NaiveParticleFilter
from repro.inference.pipeline import CleaningPipeline
from repro.runtime import (
    EpochRouter,
    EventBus,
    ShardedRuntime,
    hash_partition,
    make_partitioner,
    mod_partition,
    shard_seed,
)
from repro.streams.records import LocationEvent, TagId, make_epoch
from repro.streams.sinks import CollectingSink

POLICY = OutputPolicyConfig(delay_s=20.0)


def event_at(time, number, position=(1.0, 2.0, 0.0)):
    return LocationEvent(time=time, tag=TagId.object(number), position=position)


class TestRuntimeConfig:
    def test_defaults_valid(self):
        config = RuntimeConfig()
        assert config.n_shards == 1
        assert config.partitioner == "hash"
        assert config.executor == "serial"

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(n_shards=0)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(partitioner="round-robin")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(executor="fiber")

    def test_accepts_every_executor(self):
        for executor in ("serial", "thread", "process"):
            assert RuntimeConfig(executor=executor).executor == executor


class TestPartitioners:
    def test_deterministic_and_in_range(self):
        for fn in (hash_partition, mod_partition):
            for number in range(200):
                shard = fn(number, 4)
                assert 0 <= shard < 4
                assert shard == fn(number, 4)

    def test_hash_spreads_strided_populations(self):
        """Tags strided by the shard count all collide under mod but must
        spread under hash (the reason hash is the default)."""
        numbers = range(0, 400, 4)
        assert {mod_partition(n, 4) for n in numbers} == {0}
        counts = np.bincount([hash_partition(n, 4) for n in numbers], minlength=4)
        assert (counts > 0).all()

    def test_single_shard_partitioner_is_constant(self):
        partition = make_partitioner("hash", 1)
        assert {partition(n) for n in range(50)} == {0}

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(KeyError):
            make_partitioner("round-robin", 2)

    def test_shard_seed_preserves_root_for_single_shard(self):
        assert shard_seed(7, 0, 1) == 7

    def test_shard_seeds_distinct_and_stable(self):
        seeds = [shard_seed(7, i, 4) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [shard_seed(7, i, 4) for i in range(4)]
        assert seeds != [shard_seed(8, i, 4) for i in range(4)]


class TestEpochRouter:
    def test_single_shard_passthrough(self):
        router = EpochRouter(1)
        epoch = make_epoch(3.0, (0.0, 1.0), object_tags=[1, 2], shelf_tags=[0])
        assert router.split(epoch) == [epoch]

    def test_split_partitions_object_tags(self):
        router = EpochRouter(4)
        epoch = make_epoch(3.0, (0.0, 1.0), object_tags=range(32), shelf_tags=[0])
        parts = router.split(epoch)
        assert len(parts) == 4
        seen = set()
        for index, sub in enumerate(parts):
            for tag in sub.object_tags:
                assert router.shard_of(tag.number) == index
                assert tag not in seen
                seen.add(tag)
        assert seen == epoch.object_tags

    def test_split_broadcasts_context(self):
        router = EpochRouter(3)
        epoch = make_epoch(
            5.0,
            (1.0, 2.0, 0.0),
            object_tags=[1, 2, 3],
            shelf_tags=[0, 1],
            reported_heading=0.4,
        )
        for sub in router.split(epoch):
            assert sub.time == epoch.time
            assert sub.reported_position == epoch.reported_position
            assert sub.reported_heading == epoch.reported_heading
            assert sub.shelf_tags == epoch.shelf_tags


class TestEventBus:
    def test_fans_out_in_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda e: calls.append(("a", e.time)))
        bus.subscribe(lambda e: calls.append(("b", e.time)))
        bus.publish(event_at(1.0, 0))
        bus.publish(event_at(2.0, 1))
        assert calls == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0)]
        assert bus.published == 2

    def test_rejects_time_regression(self):
        bus = EventBus()
        bus.publish(event_at(5.0, 0))
        with pytest.raises(StreamError):
            bus.publish(event_at(4.0, 1))
        # Equal timestamps are fine (same-tick events from several shards).
        bus.publish(event_at(5.0, 2))

    def test_unordered_bus_allows_regression(self):
        bus = EventBus(enforce_order=False)
        bus.publish(event_at(5.0, 0))
        bus.publish(event_at(4.0, 1))
        assert bus.published == 2

    def test_close_hooks_run_once_and_publishing_stops(self):
        bus = EventBus()
        closes = []
        bus.subscribe(lambda e: None, on_close=lambda: closes.append(1))
        bus.close()
        bus.close()
        assert closes == [1]
        assert bus.closed
        with pytest.raises(StreamError):
            bus.publish(event_at(1.0, 0))

    def test_subscribe_sink(self):
        bus = EventBus()
        sink = CollectingSink()
        bus.subscribe_sink(sink)
        bus.publish(event_at(1.0, 0))
        bus.close()
        assert len(sink.events) == 1


def run_single_engine(model, trace, config):
    sink = CollectingSink()
    CleaningPipeline(FactoredParticleFilter(model, config), POLICY, sink).run(
        trace.epochs()
    )
    return sink.events


def run_sharded_runtime(model, trace, config, runtime_config):
    runtime = ShardedRuntime(model, config, runtime_config, POLICY)
    sink = runtime.run(trace.epochs())
    assert isinstance(sink, CollectingSink)
    return runtime, sink.events


def times_and_tags(events):
    return sorted((e.time, str(e.tag)) for e in events)


class TestShardedParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.simulation.layout import LayoutConfig
        from repro.simulation.warehouse import WarehouseConfig, WarehouseSimulator

        simulator = WarehouseSimulator(
            WarehouseConfig(layout=LayoutConfig(n_objects=8, n_shelf_tags=3), seed=11)
        )
        trace = simulator.generate()
        config = InferenceConfig(reader_particles=60, object_particles=120, seed=7)
        return simulator.world_model(), trace, config

    def test_single_shard_is_bitwise_identical(self, scenario):
        model, trace, config = scenario
        reference = run_single_engine(model, trace, config)
        _, sharded = run_sharded_runtime(model, trace, config, RuntimeConfig(n_shards=1))
        assert len(sharded) == len(reference)
        for ours, ref in zip(sharded, reference):
            assert ours.time == ref.time
            assert ours.tag == ref.tag
            # Same root seed, same epoch stream: identical RNG trajectory.
            np.testing.assert_array_equal(ours.position, ref.position)

    def test_four_shards_reproduce_event_stream(self, scenario):
        model, trace, config = scenario
        reference = run_single_engine(model, trace, config)
        runtime, sharded = run_sharded_runtime(
            model, trace, config, RuntimeConfig(n_shards=4)
        )
        # Tags and timestamps exact.
        assert times_and_tags(sharded) == times_and_tags(reference)
        # Positions within the RNG-reordering tolerance used by the
        # seed-golden parity tests.
        by_key = {(e.time, e.tag): np.asarray(e.position) for e in reference}
        for event in sharded:
            ref = by_key[(event.time, event.tag)]
            drift = float(np.hypot(event.position[0] - ref[0], event.position[1] - ref[1]))
            assert drift < 0.6, f"{event.tag} drifted {drift:.3f} ft"
        # Every shard actually owns part of the population.
        assert [s for s in runtime.shard_stats() if s["objects"] > 0]
        assert sum(s["objects"] for s in runtime.shard_stats()) == 8
        assert runtime.known_objects() == sorted(
            {e.tag.number for e in reference}
        )

    def test_sharded_run_is_deterministic(self, scenario):
        model, trace, config = scenario
        _, first = run_sharded_runtime(model, trace, config, RuntimeConfig(n_shards=4))
        _, second = run_sharded_runtime(model, trace, config, RuntimeConfig(n_shards=4))
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.time == b.time and a.tag == b.tag
            np.testing.assert_array_equal(a.position, b.position)

    def test_thread_executor_matches_serial_exactly(self, scenario):
        model, trace, config = scenario
        _, serial = run_sharded_runtime(model, trace, config, RuntimeConfig(n_shards=4))
        _, threaded = run_sharded_runtime(
            model, trace, config, RuntimeConfig(n_shards=4, executor="thread")
        )
        assert len(serial) == len(threaded)
        for a, b in zip(serial, threaded):
            assert a.time == b.time and a.tag == b.tag
            np.testing.assert_array_equal(a.position, b.position)

    def test_object_estimate_delegates_to_owning_shard(self, scenario):
        model, trace, config = scenario
        runtime, _ = run_sharded_runtime(model, trace, config, RuntimeConfig(n_shards=4))
        for number in runtime.known_objects():
            mean = runtime.object_estimate(number).mean
            assert np.isfinite(mean).all()

    def test_bus_events_arrive_time_ordered(self, scenario):
        model, trace, config = scenario
        times = []
        runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=4), POLICY)
        runtime.bus.subscribe(lambda e: times.append(e.time))
        runtime.run(trace.epochs())
        assert times == sorted(times)

    def test_step_after_finish_raises(self, scenario):
        model, trace, config = scenario
        from repro.errors import InferenceError

        runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        runtime.run(trace.epochs())
        with pytest.raises(InferenceError):
            runtime.step(make_epoch(1e6, (0.0, 1.0)))

    def test_failed_run_releases_pool_and_closes_bus(self, scenario):
        """An error mid-run must not leak worker threads or leave bus
        subscribers waiting for a close."""
        model, trace, config = scenario

        class FailingEngine:
            epoch_index = 0

            def step(self, epoch):
                raise RuntimeError("engine blew up")

            def known_objects(self):
                return []

            def object_estimate(self, number):
                raise KeyError(number)

        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(n_shards=2, executor="thread"),
            POLICY,
            engine_factory=lambda cfg: FailingEngine(),
        )
        with pytest.raises(RuntimeError, match="engine blew up"):
            runtime.run(trace.epochs())
        assert runtime._pool is None
        assert runtime.bus.closed
        runtime.finish()  # no-op after abort

    def test_abort_is_reentrant(self, scenario):
        """A second abort — even from a repeated SIGTERM while the first
        is mid-teardown — must be a silent no-op, as must finish()."""
        model, trace, config = scenario
        runtime = ShardedRuntime(model, config, RuntimeConfig(n_shards=2), POLICY)
        for epoch in list(trace.epochs())[:3]:
            runtime.step(epoch)
        closes = []
        runtime.bus.subscribe(lambda event: None, on_close=lambda: closes.append(1))
        runtime.abort()
        runtime.abort()
        runtime.finish()
        assert runtime.bus.closed
        assert closes == [1]  # close hooks fired exactly once

    def test_naive_engine_factory(self, scenario):
        """The runtime is engine-agnostic: shard the naive filter too."""
        model, trace, config = scenario
        runtime = ShardedRuntime(
            model,
            config,
            RuntimeConfig(n_shards=2),
            POLICY,
            engine_factory=lambda cfg: NaiveParticleFilter(
                model, cfg, n_particles=400
            ),
        )
        sink = runtime.run(trace.epochs())
        assert len(sink.events) >= 8
        # Naive engines have no arena; stats still report object counts.
        stats = runtime.shard_stats()
        assert sum(s["objects"] for s in stats) == 8
        assert all("arena_used_rows" not in s for s in stats)
