"""The continuous-query executor.

A :class:`ContinuousQuery` is window -> relational operators -> stream
operator.  :class:`QueryEngine` drives one or more queries over a stream of
timestamped tuples, batching arrivals into ticks by timestamp (CQL's
logical-clock semantics: all tuples with equal timestamps are visible to the
same tick).

Queries compose: the fire-code example is a nested query, expressed here by
feeding one query's output stream into another query via ``then``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import QueryError
from .relops import RelOp
from .stream_ops import Rstream, StreamOp
from .tuples import StreamTuple
from .windows import Window


class ContinuousQuery:
    """One CQL-style query plan."""

    def __init__(
        self,
        window: Window,
        operators: Sequence[RelOp] = (),
        streamer: Optional[StreamOp] = None,
        name: str = "query",
    ):
        self.window = window
        self.operators = list(operators)
        self.streamer: StreamOp = streamer if streamer is not None else Rstream()
        self.name = name
        self._downstream: Optional["ContinuousQuery"] = None

    def then(self, downstream: "ContinuousQuery") -> "ContinuousQuery":
        """Pipe this query's output stream into another query (nesting).

        Returns ``self`` so pipelines read top-down.
        """
        if self._downstream is not None:
            raise QueryError(f"query {self.name!r} already has a downstream")
        self._downstream = downstream
        return self

    def push(self, time: float, batch: Sequence[StreamTuple]) -> List[StreamTuple]:
        """Feed one tick; returns the final output batch (after nesting)."""
        relation = self.window.push(time, batch)
        for op in self.operators:
            relation = op.process(time, relation)
        out = self.streamer.process(time, relation)
        if self._downstream is not None:
            return self._downstream.push(time, out)
        return out


class QueryEngine:
    """Runs queries over a tuple stream, grouping arrivals into ticks."""

    def __init__(self) -> None:
        self._queries: Dict[str, ContinuousQuery] = {}
        self._sinks: Dict[str, List[Callable[[StreamTuple], None]]] = {}
        self._pending: List[StreamTuple] = []
        self._pending_time: Optional[float] = None
        self.outputs: Dict[str, List[StreamTuple]] = {}

    def register(
        self,
        query: ContinuousQuery,
        callback: Optional[Callable[[StreamTuple], None]] = None,
    ) -> None:
        if query.name in self._queries:
            raise QueryError(f"duplicate query name {query.name!r}")
        self._queries[query.name] = query
        self.outputs[query.name] = []
        self._sinks[query.name] = [callback] if callback else []

    def add_sink(self, name: str, callback: Callable[[StreamTuple], None]) -> None:
        """Attach another per-output callback to an already-registered query.

        Lets late consumers (e.g. the runtime's bus bridge) tap into queries
        registered before they existed, without re-registering the plan.
        """
        if name not in self._queries:
            raise QueryError(
                f"unknown query {name!r}; registered: {sorted(self._queries)}"
            )
        self._sinks[name].append(callback)

    def push(self, tup: StreamTuple) -> None:
        """Feed one tuple; tuples must arrive in non-decreasing time order."""
        if self._pending_time is None:
            self._pending_time = tup.time
        if tup.time < self._pending_time:
            raise QueryError(
                f"tuple time went backwards: {tup.time} < {self._pending_time}"
            )
        if tup.time > self._pending_time:
            self._flush_tick()
            self._pending_time = tup.time
        self._pending.append(tup)

    def push_many(self, tuples: Iterable[StreamTuple]) -> None:
        for tup in tuples:
            self.push(tup)

    def advance_to(self, time: float) -> None:
        """Process an empty tick at ``time`` (windows slide, Dstreams fire)."""
        if self._pending_time is not None and time < self._pending_time:
            raise QueryError("cannot advance backwards")
        self._flush_tick()
        self._pending_time = time
        self._flush_tick()

    def finish(self) -> None:
        """Flush the final tick."""
        self._flush_tick()

    def _flush_tick(self) -> None:
        if self._pending_time is None:
            return
        batch = self._pending
        time = self._pending_time
        self._pending = []
        self._pending_time = None
        for name, query in self._queries.items():
            out = query.push(time, batch)
            self.outputs[name].extend(out)
            for callback in self._sinks[name]:
                for tup in out:
                    callback(tup)
