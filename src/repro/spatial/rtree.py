"""A simplified R*-tree over axis-aligned boxes.

Section IV-C of the paper keeps "a standard spatial index (a simplified
R*-tree)" over the bounding boxes of past sensing regions.  This module
implements that index from scratch:

* **ChooseSubtree** descends by least overlap-enlargement at the leaf level
  and least volume-enlargement above it (the R*-tree heuristic).
* **Split** uses the R*-tree axis-sweep: pick the split axis by minimum total
  margin over candidate distributions, then the distribution with minimum
  overlap (ties by minimum combined volume).
* **Forced reinsertion** on first overflow per level per insertion pass (the
  R*-tree trick that reduces overlap), simplified to a single reinsert batch.

Entries are ``(box, value)`` pairs; values are opaque to the tree.  Deletion
is supported (the cleaning pipeline prunes sensing regions that have expired)
via the classic R-tree condense-tree algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..errors import GeometryError
from ..geometry.box import Box, union_all


def _overlap_fast(lo_a, hi_a, lo_b, hi_b) -> float:
    """Overlap measure on raw lo/hi tuples (volume, falling back to
    xy-area) without constructing Box objects — ChooseSubtree evaluates
    O(children^2) overlaps per insert, so this is the tree's hot path."""
    dx = min(hi_a[0], hi_b[0]) - max(lo_a[0], lo_b[0])
    if dx < 0.0:
        return 0.0
    dy = min(hi_a[1], hi_b[1]) - max(lo_a[1], lo_b[1])
    if dy < 0.0:
        return 0.0
    dz = min(hi_a[2], hi_b[2]) - max(lo_a[2], lo_b[2])
    if dz < 0.0:
        return 0.0
    volume = dx * dy * dz
    return volume if volume > 0.0 else dx * dy


class _Entry:
    """Leaf entry: a box and its payload."""

    __slots__ = ("box", "value")

    def __init__(self, box: Box, value: Any):
        self.box = box
        self.value = value


class _Node:
    """Tree node.  Leaves hold `_Entry`s; internal nodes hold `_Node`s."""

    __slots__ = ("leaf", "children", "box", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.children: List[Any] = []
        self.box: Optional[Box] = None
        self.parent: Optional["_Node"] = None

    def recompute_box(self) -> None:
        if not self.children:
            self.box = None
            return
        self.box = union_all([c.box for c in self.children])

    def child_boxes(self) -> List[Box]:
        return [c.box for c in self.children]


class RStarTree:
    """Simplified R*-tree.

    Parameters
    ----------
    max_entries:
        Node capacity `M`.  Minimum fill is ``max(2, M * min_fill)``.
    min_fill:
        Fraction of `M` used as the minimum node occupancy (R*-tree uses 0.4).
    reinsert_fraction:
        Fraction of entries removed and reinserted on first overflow
        (R*-tree uses 0.3).
    """

    def __init__(
        self,
        max_entries: int = 16,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        if max_entries < 4:
            raise GeometryError("max_entries must be >= 4")
        if not (0.0 < min_fill <= 0.5):
            raise GeometryError("min_fill must be in (0, 0.5]")
        self._max = max_entries
        self._min = max(2, int(max_entries * min_fill))
        self._reinsert = max(1, int(max_entries * reinsert_fraction))
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, box: Box, value: Any) -> None:
        """Insert a ``(box, value)`` entry."""
        self._insert_entry(_Entry(box, value), allow_reinsert=True)
        self._size += 1

    def _insert_entry(self, entry: _Entry, allow_reinsert: bool) -> None:
        leaf = self._choose_leaf(self._root, entry.box)
        leaf.children.append(entry)
        self._adjust_upward(leaf, allow_reinsert)

    def _choose_leaf(self, node: _Node, box: Box) -> _Node:
        while not node.leaf:
            children: List[_Node] = node.children
            if children[0].leaf:
                # Children are leaves: minimize overlap enlargement.
                best = self._least_overlap_child(children, box)
            else:
                best = self._least_enlargement_child(children, box)
            node = best
        return node

    @staticmethod
    def _least_enlargement_child(children: List[_Node], box: Box) -> _Node:
        best = None
        best_key = None
        for child in children:
            assert child.box is not None
            enlargement = child.box.enlargement(box)
            key = (enlargement, child.box.volume(), child.box.margin())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    @staticmethod
    def _least_overlap_child(children: List[_Node], box: Box) -> _Node:
        best = None
        best_key = None
        boxes = [(c.box.lo, c.box.hi) for c in children]  # type: ignore[union-attr]
        for i, child in enumerate(children):
            assert child.box is not None
            lo_c, hi_c = boxes[i]
            lo_g = tuple(min(a, b) for a, b in zip(lo_c, box.lo))
            hi_g = tuple(max(a, b) for a, b in zip(hi_c, box.hi))
            overlap_delta = 0.0
            for j, (lo_o, hi_o) in enumerate(boxes):
                if j == i:
                    continue
                overlap_delta += _overlap_fast(lo_g, hi_g, lo_o, hi_o)
                overlap_delta -= _overlap_fast(lo_c, hi_c, lo_o, hi_o)
            key = (overlap_delta, child.box.enlargement(box), child.box.volume())
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _adjust_upward(self, node: _Node, allow_reinsert: bool) -> None:
        while node is not None:
            node.recompute_box()
            if len(node.children) > self._max:
                if allow_reinsert and node is not self._root:
                    self._reinsert_overflow(node)
                    allow_reinsert = False
                else:
                    self._split(node)
            node = node.parent  # type: ignore[assignment]

    def _reinsert_overflow(self, node: _Node) -> None:
        """Forced reinsertion: remove entries farthest from the node center
        and insert them again from the root."""
        node.recompute_box()
        assert node.box is not None
        center = node.box.center
        def dist(child) -> float:
            c = child.box.center
            return float(((c - center) ** 2).sum())
        node.children.sort(key=dist)
        spill = node.children[-self._reinsert:]
        node.children = node.children[: -self._reinsert]
        self._propagate_boxes(node)
        for child in spill:
            if node.leaf:
                self._insert_entry(child, allow_reinsert=False)
            else:
                child.parent = None
                self._insert_subtree(child)

    def _insert_subtree(self, subtree: _Node) -> None:
        """Reinsert an internal child at its original level (here: one above
        the leaves; sufficient because we only reinsert from one overflow)."""
        node = self._root
        target_height = self._height(subtree)
        while self._height(node) > target_height + 1 and not node.leaf:
            node = self._least_enlargement_child(node.children, subtree.box)  # type: ignore[arg-type]
        subtree.parent = node
        node.children.append(subtree)
        self._adjust_upward(node, allow_reinsert=False)

    def _height(self, node: _Node) -> int:
        h = 0
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def _split(self, node: _Node) -> None:
        group_a, group_b = self._rstar_split(node.children)
        if node is self._root:
            new_root = _Node(leaf=False)
            left = _Node(leaf=node.leaf)
            right = _Node(leaf=node.leaf)
            left.children = group_a
            right.children = group_b
            for child in left.children:
                if not node.leaf:
                    child.parent = left
            for child in right.children:
                if not node.leaf:
                    child.parent = right
            left.recompute_box()
            right.recompute_box()
            left.parent = new_root
            right.parent = new_root
            new_root.children = [left, right]
            new_root.recompute_box()
            self._root = new_root
            return
        sibling = _Node(leaf=node.leaf)
        node.children = group_a
        sibling.children = group_b
        if not node.leaf:
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        node.recompute_box()
        sibling.recompute_box()
        parent = node.parent
        assert parent is not None
        sibling.parent = parent
        parent.children.append(sibling)
        parent.recompute_box()

    def _rstar_split(self, children: List[Any]) -> Tuple[List[Any], List[Any]]:
        """R*-tree split: choose axis by minimum margin sum, then the
        distribution with least overlap (ties: least combined volume)."""
        m = self._min
        best_axis = 0
        best_margin = None
        for axis in range(3):
            margin = 0.0
            ordered = sorted(children, key=lambda c: (c.box.lo[axis], c.box.hi[axis]))
            for k in range(m, len(ordered) - m + 1):
                left = union_all([c.box for c in ordered[:k]])
                right = union_all([c.box for c in ordered[k:]])
                margin += left.margin() + right.margin()
            if best_margin is None or margin < best_margin:
                best_margin = margin
                best_axis = axis
        ordered = sorted(
            children, key=lambda c: (c.box.lo[best_axis], c.box.hi[best_axis])
        )
        best_split = None
        best_key = None
        for k in range(m, len(ordered) - m + 1):
            left_box = union_all([c.box for c in ordered[:k]])
            right_box = union_all([c.box for c in ordered[k:]])
            key = (
                left_box.overlap_measure(right_box),
                left_box.volume() + right_box.volume(),
                left_box.margin() + right_box.margin(),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_split = k
        assert best_split is not None
        return list(ordered[:best_split]), list(ordered[best_split:])

    def _propagate_boxes(self, node: Optional[_Node]) -> None:
        while node is not None:
            node.recompute_box()
            node = node.parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, box: Box) -> List[Any]:
        """Values of all entries whose boxes intersect ``box``."""
        out: List[Any] = []
        self._search(self._root, box, out)
        return out

    def _search(self, node: _Node, box: Box, out: List[Any]) -> None:
        if node.box is None or not node.box.intersects(box):
            return
        if node.leaf:
            for entry in node.children:
                if entry.box.intersects(box):
                    out.append(entry.value)
            return
        for child in node.children:
            self._search(child, box, out)

    def search_entries(self, box: Box) -> List[Tuple[Box, Any]]:
        """Like :meth:`search` but returns ``(box, value)`` pairs."""
        out: List[Tuple[Box, Any]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.box is None or not node.box.intersects(box):
                continue
            if node.leaf:
                for entry in node.children:
                    if entry.box.intersects(box):
                        out.append((entry.box, entry.value))
            else:
                stack.extend(node.children)
        return out

    def items(self) -> Iterator[Tuple[Box, Any]]:
        """Iterate over every ``(box, value)`` entry in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.children:
                    yield (entry.box, entry.value)
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, box: Box, predicate: Callable[[Any], bool]) -> int:
        """Remove entries intersecting ``box`` whose value satisfies
        ``predicate``.  Returns the number of entries removed."""
        removed: List[_Entry] = []
        self._delete_from(self._root, box, predicate, removed)
        if removed:
            self._size -= len(removed)
            self._condense()
        return len(removed)

    def _delete_from(
        self,
        node: _Node,
        box: Box,
        predicate: Callable[[Any], bool],
        removed: List[_Entry],
    ) -> None:
        if node.box is None or not node.box.intersects(box):
            return
        if node.leaf:
            keep = []
            for entry in node.children:
                if entry.box.intersects(box) and predicate(entry.value):
                    removed.append(entry)
                else:
                    keep.append(entry)
            node.children = keep
            return
        for child in node.children:
            self._delete_from(child, box, predicate, removed)

    def _condense(self) -> None:
        """Rebuild after deletion: collect orphaned entries from underfull
        nodes and reinsert them.  Simplified full-subtree collection keeps
        the invariants without per-level bookkeeping."""
        orphans: List[_Entry] = []
        self._prune(self._root, orphans)
        self._root.recompute_box()
        # Collapse a root with a single internal child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        # An internal root can end up with zero children when every subtree
        # was pruned; reset to an empty leaf so insertion stays well-defined.
        if not self._root.leaf and not self._root.children:
            self._root = _Node(leaf=True)
        for entry in orphans:
            self._insert_entry(entry, allow_reinsert=False)

    def _prune(self, node: _Node, orphans: List[_Entry]) -> bool:
        """Post-order prune; returns True if ``node`` should be removed."""
        if node.leaf:
            node.recompute_box()
            return node is not self._root and len(node.children) < self._min
        keep = []
        for child in node.children:
            if self._prune(child, orphans):
                self._collect_entries(child, orphans)
            else:
                keep.append(child)
        node.children = keep
        node.recompute_box()
        return node is not self._root and len(node.children) < self._min

    def _collect_entries(self, node: _Node, out: List[_Entry]) -> None:
        if node.leaf:
            out.extend(node.children)
            return
        for child in node.children:
            self._collect_entries(child, out)

    # ------------------------------------------------------------------
    # Invariant checking (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken."""
        self._check_node(self._root, is_root=True)
        count = sum(1 for _ in self.items())
        assert count == self._size, f"size {self._size} != entry count {count}"
        # All leaves at the same depth.
        depths = set()
        self._leaf_depths(self._root, 0, depths)
        assert len(depths) <= 1, f"leaves at multiple depths: {depths}"

    def _leaf_depths(self, node: _Node, depth: int, out: set) -> None:
        if node.leaf:
            out.add(depth)
            return
        for child in node.children:
            self._leaf_depths(child, depth + 1, out)

    def _check_node(self, node: _Node, is_root: bool) -> None:
        if not is_root:
            assert len(node.children) >= self._min, "underfull node"
        assert len(node.children) <= self._max, "overfull node"
        if node.children:
            expected = union_all([c.box for c in node.children])
            assert node.box is not None
            assert node.box.contains_box(expected), "node box too small"
            assert expected.contains_box(node.box), "node box too large"
        if not node.leaf:
            for child in node.children:
                assert child.parent is node, "broken parent pointer"
                self._check_node(child, is_root=False)
