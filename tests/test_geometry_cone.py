"""Tests for repro.geometry.cone: the sensing/initialization cone."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.box import Box
from repro.geometry.cone import Cone


@pytest.fixture
def forward_cone():
    """Apex at origin, facing +x, 30 degree half-angle, range 3."""
    return Cone((0.0, 0.0, 0.0), 0.0, math.radians(30), 3.0)


class TestValidation:
    def test_rejects_bad_half_angle(self):
        with pytest.raises(GeometryError):
            Cone((0, 0, 0), 0.0, 0.0, 1.0)
        with pytest.raises(GeometryError):
            Cone((0, 0, 0), 0.0, 4.0, 1.0)

    def test_rejects_bad_range(self):
        with pytest.raises(GeometryError):
            Cone((0, 0, 0), 0.0, 0.5, 0.0)


class TestContains(object):
    def test_contains_boresight_points(self, forward_cone):
        pts = np.array([[1, 0, 0], [2.9, 0, 0]])
        assert forward_cone.contains(pts).all()

    def test_excludes_beyond_range(self, forward_cone):
        assert not forward_cone.contains(np.array([[3.5, 0, 0]]))[0]

    def test_excludes_outside_aperture(self, forward_cone):
        # 45 degrees off axis > 30 degree half-angle.
        assert not forward_cone.contains(np.array([[1.0, 1.0, 0.0]]))[0]

    def test_includes_edge_of_aperture(self, forward_cone):
        theta = math.radians(29.9)
        p = np.array([[2 * math.cos(theta), 2 * math.sin(theta), 0.0]])
        assert forward_cone.contains(p)[0]

    def test_heading_rotation(self):
        cone = Cone((0, 0, 0), math.pi / 2, math.radians(30), 3.0)
        assert cone.contains(np.array([[0, 2, 0]]))[0]
        assert not cone.contains(np.array([[2, 0, 0]]))[0]


class TestBoundingBox:
    def test_box_contains_all_samples(self, forward_cone, rng):
        box = forward_cone.bounding_box()
        pts = forward_cone.sample(rng, 500)
        assert box.contains_points(pts).all()

    def test_box_tight_for_forward_cone(self, forward_cone):
        box = forward_cone.bounding_box()
        # Forward cone: x spans [0, 3], y spans +/- 3*sin(30).
        assert box.lo[0] == pytest.approx(0.0)
        assert box.hi[0] == pytest.approx(3.0)
        assert box.hi[1] == pytest.approx(3.0 * math.sin(math.radians(30)))

    def test_box_for_backward_cone_includes_cardinal(self):
        cone = Cone((0, 0, 0), math.pi, math.radians(40), 2.0)
        box = cone.bounding_box()
        # The -x cardinal direction is inside the aperture.
        assert box.lo[0] == pytest.approx(-2.0)


class TestSampling:
    def test_samples_inside_cone(self, forward_cone, rng):
        pts = forward_cone.sample(rng, 400)
        assert forward_cone.contains(pts).all()

    def test_area_uniformity(self, forward_cone, rng):
        # Uniform-over-area: P(r <= R/2) should be ~1/4.
        pts = forward_cone.sample(rng, 4000)
        r = np.linalg.norm(pts[:, :2], axis=1)
        frac = (r <= 1.5).mean()
        assert frac == pytest.approx(0.25, abs=0.03)

    def test_sample_within_region(self, forward_cone, rng):
        region = Box((1.0, -0.5, 0.0), (2.0, 0.5, 0.0))
        pts = forward_cone.sample_within(rng, 100, region)
        assert pts.shape == (100, 3)
        assert region.contains_points(pts).all()
        assert forward_cone.contains(pts).all()

    def test_sample_within_disjoint_region_falls_back(self, forward_cone, rng):
        # Region entirely behind the cone: fallback still yields n points.
        region = Box((-5.0, -1.0, 0.0), (-4.0, 1.0, 0.0))
        pts = forward_cone.sample_within(rng, 50, region)
        assert pts.shape == (50, 3)
