"""Sensor-model-based particle initialization (Section IV-A).

"We create new particles for an object when we see it the first time or at a
location far away from the previous location of observing it.  At the current
location, we initialize the particle locations from a uniform distribution
over a cone originating at the reader location.  The width of the cone of
initialization is chosen to be an overestimate of the true range of the
reader."

Also implements the re-detection subtlety: at intermediate re-detection
distances half the particles are kept and half are moved to the new location
("the particles will spread out, but over time weighting and resampling will
favor the particles close to the object's true location").
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from ..config import InferenceConfig
from ..geometry.cone import Cone
from ..geometry.shapes import ShelfSet


class ReinitDecision(enum.Enum):
    """What to do with an object's particles on a (re-)detection."""

    KEEP = "keep"  # detection near existing belief: keep particles
    SPLIT = "split"  # intermediate distance: keep half, move half
    RESET = "reset"  # far away (or first sighting): recreate all particles


def classify_redetection(
    distance_to_belief: Optional[float], config: InferenceConfig
) -> ReinitDecision:
    """Apply the paper's distance thresholds to a re-detection event.

    ``distance_to_belief`` is the distance from the current reader position
    to the belief's posterior mean; ``None`` means first sighting.  The
    decision asks: *could the reader plausibly be reading the object where we
    believe it is?*

    * Within ``reinit_near_ft`` (an overestimate of the read range): yes —
      this is an ordinary in-range read, keep the particles.  Triggering any
      earlier makes the belief "walk" with the reader, because fringe reads
      systematically favour particles close to the current pose.
    * Beyond ``reinit_far_ft``: no — the object clearly moved far away;
      discard the old particles ("our method discards all the old particles
      and recreates them from the new location").
    * In between — the ambiguous shuffling-versus-reflection zone — keep half
      and move half (the paper's Section IV-A subtlety); this is also the
      regime where the paper's own Fig 5(h) shows elevated error.
    """
    if distance_to_belief is None:
        return ReinitDecision.RESET
    if distance_to_belief <= config.reinit_near_ft:
        return ReinitDecision.KEEP
    if distance_to_belief >= config.reinit_far_ft:
        return ReinitDecision.RESET
    return ReinitDecision.SPLIT


def config_for_sensor(config: InferenceConfig, sensor_model) -> InferenceConfig:
    """Copy of ``config`` with the init cone (and the near re-detection
    threshold) derived from a sensor model via
    :func:`initialization_geometry`."""
    from dataclasses import replace

    half_angle, max_range = initialization_geometry(sensor_model)
    return replace(
        config,
        init_cone_half_angle_rad=half_angle,
        init_cone_range_ft=max_range,
        reinit_near_ft=max(config.reinit_near_ft, max_range * 1.1),
        reinit_far_ft=max(config.reinit_far_ft, max_range * 2.2),
    )


def initialization_geometry(
    sensor_model, overestimate: float = 1.25, cap_ft: float = 6.0
):
    """Derive the initialization cone from a sensor model (Section IV-A).

    Returns ``(half_angle, max_range)``: the range is an overestimate of the
    distance at which the read rate falls to 5% on boresight; the half-angle
    an overestimate of the bearing at which the read rate (at half range)
    falls to 5%.  Keeping the cone matched to the *actual* antenna matters:
    a wide-field reader (the lab's spherical antenna) reads tags at bearings
    far outside a default 30-degree cone, and particles that never cover the
    true location cannot be recovered by reweighting.

    ``cap_ft`` bounds the range: models learned from aisle-constrained data
    (where distance and bearing co-vary) can be arbitrary off-manifold, and
    a UHF reader's physical range is a few feet regardless.
    """
    import numpy as np

    max_range = sensor_model.effective_range(0.05, theta=0.0) * overestimate
    max_range = min(max(max_range, 0.5), cap_ft)
    probe_distance = max_range / (2.0 * overestimate)
    half_angle = None
    for theta in np.linspace(0.05, np.pi, 64):
        p = float(sensor_model.read_probability(probe_distance, theta))
        if p < 0.05:
            half_angle = float(theta) * overestimate
            break
    if half_angle is None:
        half_angle = np.pi
    half_angle = min(max(half_angle, 0.2), np.pi)
    return half_angle, max_range


class SensorBasedInitializer:
    """Draws initial object particles from the initialization cone."""

    def __init__(self, config: InferenceConfig, shelves: Optional[ShelfSet] = None):
        self._config = config
        self._shelves = shelves

    def initialization_cone(self, reader_position, reader_heading: float) -> Cone:
        return Cone.from_pose(
            reader_position,
            reader_heading,
            self._config.init_cone_half_angle_rad,
            self._config.init_cone_range_ft,
        )

    def sample(
        self,
        reader_position,
        reader_heading: float,
        n: int,
        rng: np.random.Generator,
        clip_to_shelves: bool = True,
    ) -> np.ndarray:
        """``n`` particles uniform over (init cone) ∩ (shelf union).

        Clipping to the shelf area implements the paper's observation that
        "such shelf information helps restrict the area for location
        sampling" — objects live on shelves, so particles in the aisle only
        add noise (and, being closer to the reader, soak up read likelihood
        and bias the estimate off the shelf).  When the cone misses every
        shelf, falls back to sampling the shelf region nearest the cone, and
        with no shelf geometry at all uses the raw cone.
        """
        cone = self.initialization_cone(reader_position, reader_heading)
        if not clip_to_shelves or self._shelves is None:
            return cone.sample(rng, n)
        shelves = self._shelves
        collected = []
        have = 0
        for _ in range(40):
            cand = cone.sample(rng, max(4 * (n - have), 64))
            keep = cand[shelves.contains_points(cand)]
            if keep.shape[0]:
                collected.append(keep)
                have += keep.shape[0]
            if have >= n:
                break
        if have >= n:
            return np.vstack(collected)[:n]
        # Cone barely touches the shelves: sample shelf points inside the
        # cone's bounding box (possible when the cone is an underestimate).
        box = cone.bounding_box().expanded(0.25)
        cand = shelves.sample_uniform(rng, max(16 * n, 256))
        keep = cand[box.contains_points(cand)]
        if collected:
            keep = np.vstack(collected + [keep])
        if keep.shape[0] >= n:
            return keep[:n]
        extra = shelves.sample_uniform(rng, n - keep.shape[0])
        return np.vstack([keep, extra]) if keep.shape[0] else extra

    def reinitialize(
        self,
        particles: np.ndarray,
        decision: ReinitDecision,
        reader_position,
        reader_heading: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply a :class:`ReinitDecision` to an existing particle array."""
        n = particles.shape[0]
        if decision is ReinitDecision.KEEP:
            return particles
        if decision is ReinitDecision.RESET:
            return self.sample(reader_position, reader_heading, n, rng)
        # SPLIT: keep a random half, re-draw the other half in the new cone.
        half = n // 2
        order = rng.permutation(n)
        kept = particles[order[: n - half]]
        fresh = self.sample(reader_position, reader_heading, half, rng)
        return np.vstack([kept, fresh])
