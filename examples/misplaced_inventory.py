"""Misplaced-inventory detection: location-update query over two scan rounds.

The paper's intro motivates "identifying misplaced inventory in retail
stores".  Between two scans of the warehouse, a case of objects is moved; the
location-update query (Section II-B, Query 1) over the cleaned event stream
reports exactly the objects whose location changed.

Run:  python examples/misplaced_inventory.py
"""

import numpy as np

from repro import (
    CleaningPipeline,
    FactoredParticleFilter,
    InferenceConfig,
    OutputPolicyConfig,
    QueryEngine,
    ScheduledMove,
    WarehouseConfig,
    WarehouseSimulator,
    location_update_query,
    tuple_from_event,
)
from repro.simulation import LayoutConfig


MOVED_OBJECTS = (4, 5)
MOVE_DISTANCE_FT = 6.0


def main() -> None:
    # Two scan rounds; between them (epoch 160 = during the return leg,
    # after round 1 has observed everything) objects 4 and 5 are moved
    # 6 ft down the shelf.
    move = ScheduledMove(
        epoch_index=160,
        numbers=MOVED_OBJECTS,
        displacement=(0.0, MOVE_DISTANCE_FT, 0.0),
    )
    simulator = WarehouseSimulator(
        WarehouseConfig(
            layout=LayoutConfig(n_objects=14, object_spacing_ft=1.0, n_shelf_tags=4),
            n_rounds=2,
            moves=(move,),
            seed=13,
        )
    )
    trace = simulator.generate()
    print(
        f"two-round scan: {trace.n_readings} readings; objects {MOVED_OBJECTS} "
        f"moved {MOVE_DISTANCE_FT} ft between rounds"
    )

    engine = FactoredParticleFilter(
        simulator.world_model(random_walk_motion=True),
        InferenceConfig(reader_particles=120, object_particles=400),
    )
    # Re-emit whenever an estimate moves >2 ft so the query sees the change.
    pipeline = CleaningPipeline(
        engine,
        OutputPolicyConfig(delay_s=30.0, movement_threshold_ft=2.0),
    )
    sink = pipeline.run(trace.epochs())

    # Query 1: report each object's location when it changes.  Quantize
    # locations to 1-ft cells so estimation jitter does not read as motion.
    queries = QueryEngine()
    queries.register(location_update_query())
    for event in sorted(sink.events, key=lambda e: e.time):
        tup = tuple_from_event(event)
        tup = tup.extended(
            x=float(np.round(tup["x"])), y=float(np.round(tup["y"]))
        )
        queries.push(tup)
    queries.finish()

    updates = queries.outputs["location_updates"]
    changes: dict = {}
    for update in updates:
        changes.setdefault(update["tag_id"], []).append(
            (update.time, update["x"], update["y"])
        )

    print("\nlocation-update reports per object (first = initial placement):")
    flagged = []
    for tag_id, reports in sorted(changes.items(), key=lambda kv: kv[0]):
        marker = ""
        if len(reports) > 1:
            flagged.append(tag_id)
            marker = "  <-- MOVED"
        path = " -> ".join(f"({x:.0f},{y:.0f})" for _, x, y in reports)
        print(f"  {tag_id:>10}: {path}{marker}")

    expected = {f"object:{n}" for n in MOVED_OBJECTS}
    print(f"\nflagged as moved : {sorted(flagged)}")
    print(f"actually moved   : {sorted(expected)}")


if __name__ == "__main__":
    main()
